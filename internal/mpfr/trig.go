package mpfr

// maxArgReductionBits caps the extra working precision spent on trigonometric
// argument reduction for astronomically large arguments. Beyond this, results
// degrade gracefully rather than exhausting memory (documented limitation;
// FPVM workloads keep trig arguments within a few hundred bits of exponent).
const maxArgReductionBits = 1 << 12

// trigReduce returns r and the quadrant q (mod 4) such that
// x = n·(π/2) + r, |r| <= π/4, q = n mod 4, computed at precision wp.
func trigReduce(x *Float, wp uint) (r *Float, quadrant int64) {
	extra := uint(0)
	if x.exp > 0 {
		extra = uint(x.exp)
		if extra > maxArgReductionBits {
			extra = maxArgReductionBits
		}
	}
	wr := wp + extra + 32
	halfPi := New(wr)
	halfPi.Pi(RoundNearestEven)
	halfPi.exp-- // π/2

	nf := New(wr)
	nf.Div(x, halfPi, RoundNearestEven)
	n, ok := nf.Int64(RoundNearestEven)
	if !ok {
		// Argument too large to reduce meaningfully; give up gracefully.
		r = New(wp)
		r.setZero(false)
		return r, 0
	}
	nl := New(wr)
	nl.SetInt64(n, RoundNearestEven)
	nl.Mul(nl, halfPi, RoundNearestEven)
	r = New(wp + 32)
	r.Sub(x, nl, RoundNearestEven)
	return r, ((n % 4) + 4) % 4
}

// sinTaylor computes sin(r) for |r| <= π/4 at precision wp.
func sinTaylor(r *Float, wp uint) *Float {
	sum := New(wp)
	sum.Set(r, RoundNearestEven)
	if r.form != finite {
		return sum
	}
	r2 := New(wp)
	r2.Sqr(r, RoundNearestEven)
	term := New(wp)
	term.Set(r, RoundNearestEven)
	df := New(wp)
	for n := int64(1); ; n++ {
		// term *= -r² / ((2n)(2n+1))
		term.Mul(term, r2, RoundNearestEven)
		df.SetInt64(2*n*(2*n+1), RoundNearestEven)
		term.Div(term, df, RoundNearestEven)
		term.neg = !term.neg
		if term.form == zero || (sum.form == finite && term.exp < sum.exp-int64(wp)-2) {
			break
		}
		sum.Add(sum, term, RoundNearestEven)
	}
	return sum
}

// cosTaylor computes cos(r) for |r| <= π/4 at precision wp.
func cosTaylor(r *Float, wp uint) *Float {
	sum := New(wp)
	sum.SetUint64(1, RoundNearestEven)
	if r.form != finite {
		if r.form == zero {
			return sum
		}
		sum.setNaN()
		return sum
	}
	r2 := New(wp)
	r2.Sqr(r, RoundNearestEven)
	term := New(wp)
	term.SetUint64(1, RoundNearestEven)
	df := New(wp)
	for n := int64(1); ; n++ {
		// term *= -r² / ((2n-1)(2n))
		term.Mul(term, r2, RoundNearestEven)
		df.SetInt64((2*n-1)*(2*n), RoundNearestEven)
		term.Div(term, df, RoundNearestEven)
		term.neg = !term.neg
		if term.form == zero || term.exp < sum.exp-int64(wp)-2 {
			break
		}
		sum.Add(sum, term, RoundNearestEven)
	}
	return sum
}

// Sin sets z to sin(x) rounded to z's precision and returns the ternary value.
func (z *Float) Sin(x *Float, rnd RoundingMode) int {
	switch x.form {
	case nan, inf:
		z.setNaN()
		return 0
	case zero:
		z.setZero(x.neg)
		return 0
	}
	wp := z.wprec() + 32
	r, q := trigReduce(x, wp)
	var res *Float
	switch q {
	case 0:
		res = sinTaylor(r, wp)
	case 1:
		res = cosTaylor(r, wp)
	case 2:
		res = sinTaylor(r, wp)
		res.negInPlace()
	default:
		res = cosTaylor(r, wp)
		res.negInPlace()
	}
	return z.Set(res, rnd)
}

// Cos sets z to cos(x) rounded to z's precision and returns the ternary value.
func (z *Float) Cos(x *Float, rnd RoundingMode) int {
	switch x.form {
	case nan, inf:
		z.setNaN()
		return 0
	case zero:
		return z.SetUint64(1, rnd)
	}
	wp := z.wprec() + 32
	r, q := trigReduce(x, wp)
	var res *Float
	switch q {
	case 0:
		res = cosTaylor(r, wp)
	case 1:
		res = sinTaylor(r, wp)
		res.negInPlace()
	case 2:
		res = cosTaylor(r, wp)
		res.negInPlace()
	default:
		res = sinTaylor(r, wp)
	}
	return z.Set(res, rnd)
}

// Tan sets z to tan(x) rounded to z's precision and returns the ternary value.
func (z *Float) Tan(x *Float, rnd RoundingMode) int {
	switch x.form {
	case nan, inf:
		z.setNaN()
		return 0
	case zero:
		z.setZero(x.neg)
		return 0
	}
	wp := z.wprec() + 32
	r, q := trigReduce(x, wp)
	s := sinTaylor(r, wp)
	c := cosTaylor(r, wp)
	t := New(wp)
	if q == 1 || q == 3 {
		// tan(x) = -cos(r)/sin(r) in odd quadrants.
		t.Div(c, s, RoundNearestEven)
		t.negInPlace()
	} else {
		t.Div(s, c, RoundNearestEven)
	}
	return z.Set(t, rnd)
}

func (x *Float) negInPlace() {
	if x.form != nan {
		x.neg = !x.neg
	}
}

// atanSmall computes atan(t) = t − t³/3 + t⁵/5 − ... for |t| < 1,
// accurate when |t| is small.
func atanSmall(t *Float, wp uint) *Float {
	sum := New(wp)
	sum.Set(t, RoundNearestEven)
	if t.form != finite {
		return sum
	}
	t2 := New(wp)
	t2.Sqr(t, RoundNearestEven)
	pow := New(wp)
	pow.Set(t, RoundNearestEven)
	term := New(wp)
	df := New(wp)
	for n := int64(1); ; n++ {
		pow.Mul(pow, t2, RoundNearestEven)
		pow.negInPlace()
		df.SetInt64(2*n+1, RoundNearestEven)
		term.Div(pow, df, RoundNearestEven)
		if term.form == zero || term.exp < sum.exp-int64(wp)-2 {
			break
		}
		sum.Add(sum, term, RoundNearestEven)
	}
	return sum
}

// Atan sets z to arctan(x) rounded to z's precision; returns ternary value.
func (z *Float) Atan(x *Float, rnd RoundingMode) int {
	switch x.form {
	case nan:
		z.setNaN()
		return 0
	case zero:
		z.setZero(x.neg)
		return 0
	case inf:
		pi := New(z.wprec())
		pi.Pi(RoundNearestEven)
		pi.exp-- // π/2
		pi.neg = x.neg
		return z.Set(pi, rnd)
	}
	wp := z.wprec() + 64

	t := New(wp)
	invert := x.exp > 0 // |x| >= 1 (or could be exactly 1)
	if invert {
		one := New(8)
		one.SetUint64(1, RoundNearestEven)
		t.Div(one, x, RoundNearestEven)
		t.neg = false
	} else {
		t.Abs(x, RoundNearestEven)
	}

	// Halve the angle k times: atan(t) = 2·atan(t / (1 + sqrt(1+t²))).
	const k = 8
	one := New(8)
	one.SetUint64(1, RoundNearestEven)
	tmp := New(wp)
	den := New(wp)
	for i := 0; i < k; i++ {
		tmp.Sqr(t, RoundNearestEven)
		tmp.Add(tmp, one, RoundNearestEven)
		tmp.Sqrt(tmp, RoundNearestEven)
		den.Add(tmp, one, RoundNearestEven)
		t.Div(t, den, RoundNearestEven)
	}
	res := atanSmall(t, wp)
	if res.form == finite {
		res.exp += k
	}
	if invert {
		// atan(|x|) = π/2 − atan(1/|x|)
		pi2 := New(wp)
		pi2.Pi(RoundNearestEven)
		pi2.exp--
		res.Sub(pi2, res, RoundNearestEven)
	}
	res.neg = res.neg != x.neg
	return z.Set(res, rnd)
}

// Asin sets z to arcsin(x); NaN outside [−1, 1].
func (z *Float) Asin(x *Float, rnd RoundingMode) int {
	switch x.form {
	case nan, inf:
		z.setNaN()
		return 0
	case zero:
		z.setZero(x.neg)
		return 0
	}
	one := New(8)
	one.SetUint64(1, RoundNearestEven)
	switch x.cmpAbs(one) {
	case 1:
		z.setNaN()
		return 0
	case 0:
		pi2 := New(z.wprec())
		pi2.Pi(RoundNearestEven)
		pi2.exp--
		pi2.neg = x.neg
		return z.Set(pi2, rnd)
	}
	// asin(x) = atan(x / sqrt(1 − x²)).
	wp := z.wprec() + 64
	t := New(wp)
	t.Sqr(x, RoundNearestEven)
	t.Sub(one, t, RoundNearestEven)
	t.Sqrt(t, RoundNearestEven)
	t.Div(x, t, RoundNearestEven)
	r := New(wp)
	r.Atan(t, RoundNearestEven)
	return z.Set(r, rnd)
}

// Acos sets z to arccos(x); NaN outside [−1, 1].
func (z *Float) Acos(x *Float, rnd RoundingMode) int {
	switch x.form {
	case nan, inf:
		z.setNaN()
		return 0
	}
	one := New(8)
	one.SetUint64(1, RoundNearestEven)
	if x.form == finite && x.cmpAbs(one) > 0 {
		z.setNaN()
		return 0
	}
	// acos(x) = 2·atan(sqrt((1−x)/(1+x))), stable near x = ±1.
	wp := z.wprec() + 64
	num := New(wp)
	den := New(wp)
	num.Sub(one, x, RoundNearestEven)
	den.Add(one, x, RoundNearestEven)
	if den.form == zero {
		// x == −1: acos = π.
		pi := New(z.wprec())
		pi.Pi(RoundNearestEven)
		return z.Set(pi, rnd)
	}
	t := New(wp)
	t.Div(num, den, RoundNearestEven)
	t.Sqrt(t, RoundNearestEven)
	r := New(wp)
	r.Atan(t, RoundNearestEven)
	if r.form == finite {
		r.exp++
	}
	return z.Set(r, rnd)
}

// Atan2 sets z to the angle of the point (x, y) in the plane, i.e.
// atan(y/x) adjusted for the quadrant, following IEEE 754 atan2 semantics
// for zeros and infinities (subset sufficient for FPVM workloads).
func (z *Float) Atan2(y, x *Float, rnd RoundingMode) int {
	if y.form == nan || x.form == nan {
		z.setNaN()
		return 0
	}
	wp := z.wprec() + 64
	pi := New(wp)
	pi.Pi(RoundNearestEven)

	switch {
	case y.form == zero:
		if x.neg { // x < 0 or -0: ±π
			pi.neg = y.neg
			return z.Set(pi, rnd)
		}
		z.setZero(y.neg)
		return 0
	case x.form == zero:
		pi.exp-- // π/2
		pi.neg = y.neg
		return z.Set(pi, rnd)
	case x.form == inf && y.form == inf:
		// ±π/4 or ±3π/4
		pi.exp -= 2 // π/4
		if x.neg {
			three := New(8)
			three.SetUint64(3, RoundNearestEven)
			pi.Mul(pi, three, RoundNearestEven)
		}
		pi.neg = y.neg
		return z.Set(pi, rnd)
	case x.form == inf:
		if x.neg {
			pi.neg = y.neg
			return z.Set(pi, rnd)
		}
		z.setZero(y.neg)
		return 0
	case y.form == inf:
		pi.exp--
		pi.neg = y.neg
		return z.Set(pi, rnd)
	}

	q := New(wp)
	q.Div(y, x, RoundNearestEven)
	a := New(wp)
	a.Atan(q, RoundNearestEven)
	if x.neg {
		// Shift into the correct half-plane.
		if y.neg {
			a.Sub(a, pi, RoundNearestEven)
		} else {
			a.Add(a, pi, RoundNearestEven)
		}
	}
	return z.Set(a, rnd)
}
