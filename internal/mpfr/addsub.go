package mpfr

import "fpvm/internal/mpnat"

// unitExp returns the exponent E of x's unit so that x = ±mant * 2^E.
func (x *Float) unitExp() int64 {
	return x.exp - int64(x.mant.BitLen())
}

// Add sets z to x + y rounded to z's precision and returns the ternary value.
func (z *Float) Add(x, y *Float, rnd RoundingMode) int {
	if t, done := z.addSpecial(x, y, false, rnd); done {
		return t
	}
	return z.addMant(x.neg, x.mant, x.unitExp(), y.neg, y.mant, y.unitExp(), rnd)
}

// Sub sets z to x - y rounded to z's precision and returns the ternary value.
func (z *Float) Sub(x, y *Float, rnd RoundingMode) int {
	if t, done := z.addSpecial(x, y, true, rnd); done {
		return t
	}
	return z.addMant(x.neg, x.mant, x.unitExp(), !y.neg, y.mant, y.unitExp(), rnd)
}

// addSpecial handles NaN/Inf/zero operands for Add (negY=false) and Sub
// (negY=true). The bool result reports whether the operation was completed.
func (z *Float) addSpecial(x, y *Float, negY bool, rnd RoundingMode) (int, bool) {
	if x.form == finite && y.form == finite {
		return 0, false
	}
	yneg := y.neg != negY
	switch {
	case x.form == nan || y.form == nan:
		z.setNaN()
	case x.form == inf && y.form == inf:
		if x.neg == yneg {
			z.setInf(x.neg)
		} else {
			z.setNaN() // Inf - Inf
		}
	case x.form == inf:
		z.setInf(x.neg)
	case y.form == inf:
		z.setInf(yneg)
	case x.form == zero && y.form == zero:
		// IEEE 754: (+0) + (-0) = +0 except in RTN where it is -0.
		if x.neg == yneg {
			z.setZero(x.neg)
		} else {
			z.setZero(rnd == RoundTowardNegative)
		}
	case x.form == zero:
		t := z.Set(y, rnd)
		if negY && z.form != nan {
			z.neg = !z.neg
			t = -t
		}
		return t, true
	default: // y is zero
		return z.Set(x, rnd), true
	}
	return 0, true
}

// addMant computes (-1)^negA * Ma * 2^Ea + (-1)^negB * Mb * 2^Eb, rounds to
// z's precision, and returns the ternary value. Both mantissas must be
// nonzero. This is the shared engine behind Add, Sub, and FMA.
func (z *Float) addMant(negA bool, ma mpnat.Nat, ea int64, negB bool, mb mpnat.Nat, eb int64, rnd RoundingMode) int {
	// Order so that a is the operand with the higher most-significant bit.
	higha := ea + int64(ma.BitLen())
	highb := eb + int64(mb.BitLen())
	if higha < highb || (higha == highb && absCmp(ma, ea, mb, eb) < 0) {
		ma, mb = mb, ma
		ea, eb = eb, ea
		negA, negB = negB, negA
		higha, highb = highb, higha
	}

	prec := int64(z.effPrec())
	sameSign := negA == negB

	// Far-apart shortcut: b is entirely below a's guard+sticky region.
	// Extend a by s bits so the extended mantissa has at least prec+3 bits
	// (satisfying setRounded's sticky contract) and b is worth strictly
	// less than one unit of the extended a.
	bla := int64(ma.BitLen())
	s := int64(3)
	if prec+3-bla > s {
		s = prec + 3 - bla
	}
	if gap := higha - highb; gap >= bla+s {
		m := mpnat.Shl(ma, uint(s))
		if sameSign {
			// Value is m + eps with 0 < eps < 1 unit.
			return z.setRounded(negA, m, ea-s, true, rnd)
		}
		// Value is m - eps = (m-1) + (1-eps) with 0 < 1-eps < 1 unit.
		return z.setRounded(negA, mpnat.Sub(m, mpnat.Nat{1}), ea-s, true, rnd)
	}

	// Exact path: align to the common unit and add/subtract precisely.
	// The shift amounts are bounded by the gap check above plus operand
	// precisions, so this cannot blow up.
	unit := ea
	if eb < unit {
		unit = eb
	}
	sa := mpnat.Shl(ma, uint(ea-unit))
	sb := mpnat.Shl(mb, uint(eb-unit))
	if sameSign {
		return z.setRounded(negA, mpnat.Add(sa, sb), unit, false, rnd)
	}
	switch sa.Cmp(sb) {
	case 0:
		// Exact cancellation: IEEE sum of opposite values is +0 (RTN: -0).
		z.setZero(rnd == RoundTowardNegative)
		return 0
	case 1:
		return z.setRounded(negA, mpnat.Sub(sa, sb), unit, false, rnd)
	default:
		return z.setRounded(negB, mpnat.Sub(sb, sa), unit, false, rnd)
	}
}

// absCmp compares |Ma * 2^Ea| with |Mb * 2^Eb| given both have the same
// most-significant-bit position.
func absCmp(ma mpnat.Nat, ea int64, mb mpnat.Nat, eb int64) int {
	// Align the units and compare.
	unit := ea
	if eb < unit {
		unit = eb
	}
	return mpnat.Shl(ma, uint(ea-unit)).Cmp(mpnat.Shl(mb, uint(eb-unit)))
}

// Cmp compares x and y and returns -1, 0, or +1. It returns 0 if either
// operand is NaN (callers needing IEEE unordered semantics should test
// IsNaN first, as the arith bindings do).
func (x *Float) Cmp(y *Float) int {
	if x.form == nan || y.form == nan {
		return 0
	}
	sx, sy := x.Sign(), y.Sign()
	switch {
	case sx < sy:
		return -1
	case sx > sy:
		return 1
	case sx == 0:
		return 0
	}
	// Same nonzero sign: compare magnitudes.
	c := x.cmpAbs(y)
	if sx < 0 {
		return -c
	}
	return c
}

// cmpAbs compares |x| and |y| for finite or infinite x, y.
func (x *Float) cmpAbs(y *Float) int {
	switch {
	case x.form == inf && y.form == inf:
		return 0
	case x.form == inf:
		return 1
	case y.form == inf:
		return -1
	case x.form == zero && y.form == zero:
		return 0
	case x.form == zero:
		return -1
	case y.form == zero:
		return 1
	}
	switch {
	case x.exp < y.exp:
		return -1
	case x.exp > y.exp:
		return 1
	}
	return absCmp(x.mant, x.unitExp(), y.mant, y.unitExp())
}

// CmpAbs compares |x| and |y|, returning -1, 0, or +1; NaNs compare as 0.
func (x *Float) CmpAbs(y *Float) int {
	if x.form == nan || y.form == nan {
		return 0
	}
	return x.cmpAbs(y)
}
