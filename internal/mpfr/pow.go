package mpfr

// Pow sets z to x^y rounded to z's precision and returns the ternary value.
// The IEEE 754 pow special cases are honored: pow(x, 0) = 1 for any x
// (including NaN), pow(1, y) = 1, negative base with non-integer exponent is
// NaN, and zeros/infinities follow the usual sign rules.
func (z *Float) Pow(x, y *Float, rnd RoundingMode) int {
	// pow(x, 0) = 1 and pow(1, y) = 1, even for NaN partners.
	if y.form == zero {
		return z.SetUint64(1, rnd)
	}
	if x.form == finite && !x.neg && x.exp == 1 && isPow2Mant(x.mant) {
		return z.SetUint64(1, rnd) // x == 1
	}
	if x.form == nan || y.form == nan {
		z.setNaN()
		return 0
	}

	yInt, yIsInt, yOdd := intExponent(y)

	switch x.form {
	case zero:
		negOut := x.neg && yIsInt && yOdd
		if y.neg { // pow(±0, negative) = ±Inf
			z.setInf(negOut)
		} else {
			z.setZero(negOut)
		}
		return 0
	case inf:
		negOut := x.neg && yIsInt && yOdd
		if y.neg {
			z.setZero(negOut)
		} else {
			z.setInf(negOut)
		}
		return 0
	}

	if y.form == inf {
		// |x| vs 1 decides.
		one := New(8)
		one.SetUint64(1, RoundNearestEven)
		c := x.cmpAbs(one)
		switch {
		case c == 0:
			return z.SetUint64(1, rnd) // pow(±1, ±Inf) = 1
		case (c > 0) != y.neg:
			z.setInf(false)
		default:
			z.setZero(false)
		}
		return 0
	}

	if x.neg && !yIsInt {
		z.setNaN()
		return 0
	}

	// Integer exponents of modest size: exact repeated squaring.
	if yIsInt && yInt > -(1<<20) && yInt < 1<<20 {
		return z.powInt(x, yInt, rnd)
	}

	// General case: z = ± exp(y · ln |x|). A negative base reaches here only
	// with an integer exponent too large for powInt (|y| ≥ 2^20); the sign
	// of the result is then decided by the exponent's parity.
	ax := x
	negOut := false
	if x.neg {
		ax = New(uint(x.effPrec()))
		ax.Set(x, RoundNearestEven)
		ax.neg = false
		negOut = yOdd
	}
	wp := z.wprec() + 64
	lx := New(wp)
	lx.Log(ax, RoundNearestEven)
	prod := New(wp)
	prod.Mul(y, lx, RoundNearestEven)
	r := New(wp)
	r.Exp(prod, RoundNearestEven)
	if negOut {
		r.neg = !r.neg
	}
	return z.Set(r, rnd)
}

// intExponent reports whether y is an integer, its value (when it fits in
// int64; otherwise saturated), and whether that integer is odd.
func intExponent(y *Float) (v int64, isInt, odd bool) {
	if y.form != finite {
		return 0, false, false
	}
	ue := y.unitExp()
	if ue < 0 {
		if -ue >= int64(y.mant.BitLen()) {
			return 0, false, false // |y| < 1 and nonzero: not an integer
		}
		if lowBitsNonzero(y.mant, int(-ue)) {
			return 0, false, false // fractional bits present
		}
	}
	v, ok := y.Int64(RoundTowardZero)
	if !ok {
		// Huge integer exponent. Parity: the value is mant·2^ue, so it is
		// odd exactly when the bit at the unit position is the lowest set bit.
		switch {
		case ue > 0:
			odd = false
		case ue == 0:
			odd = y.mant.Bit(0) == 1
		default:
			odd = y.mant.Bit(int(-ue)) == 1
		}
		return saturateInt64(y.neg), true, odd
	}
	return v, true, v&1 != 0
}

func saturateInt64(neg bool) int64 {
	if neg {
		return -(1 << 62)
	}
	return 1 << 62
}

// powInt computes x^n for integer n via binary exponentiation with guard
// precision, handling negative n by inversion.
func (z *Float) powInt(x *Float, n int64, rnd RoundingMode) int {
	wp := z.wprec() + 64
	acc := New(wp)
	acc.SetUint64(1, RoundNearestEven)
	base := New(wp)
	base.Set(x, RoundNearestEven)
	m := n
	if m < 0 {
		m = -m
	}
	for m > 0 {
		if m&1 == 1 {
			acc.Mul(acc, base, RoundNearestEven)
		}
		base.Sqr(base, RoundNearestEven)
		m >>= 1
	}
	if n < 0 {
		one := New(8)
		one.SetUint64(1, RoundNearestEven)
		acc.Div(one, acc, RoundNearestEven)
	}
	return z.Set(acc, rnd)
}

// Hypot sets z to sqrt(x² + y²) without undue overflow for moderate inputs.
func (z *Float) Hypot(x, y *Float, rnd RoundingMode) int {
	if x.form == inf || y.form == inf {
		z.setInf(false)
		return 0
	}
	if x.form == nan || y.form == nan {
		z.setNaN()
		return 0
	}
	wp := z.wprec() + 32
	xx := New(wp)
	yy := New(wp)
	xx.Sqr(x, RoundNearestEven)
	yy.Sqr(y, RoundNearestEven)
	s := New(wp)
	s.Add(xx, yy, RoundNearestEven)
	r := New(wp)
	r.Sqrt(s, RoundNearestEven)
	return z.Set(r, rnd)
}
