package patch

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
	"fpvm/internal/vsa"
)

const holeSrc = `
.data
a: .f64 1.0
slot: .zero 8
.text
	movsd f0, [a]
	divsd f0, =3.0     ; boxed result under FPVM
	movsd [slot], f0   ; source
	mov r0, [slot]     ; sink
	outi r0
	halt
`

func TestApplyAndInstall(t *testing.T) {
	prog := asm.MustAssemble(holeSrc)
	p, err := Apply(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(p.Sites))
	}
	if len(p.Rep.Sources) != 1 {
		t.Fatalf("sources = %d", len(p.Rep.Sources))
	}
	m, err := machine.New(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Install(m)
	if m.CorrectnessSiteCount() != 1 {
		t.Fatal("Install did not set correctness sites")
	}
}

// TestEndToEndCorrectness: the patched program run under FPVM produces the
// IEEE bits at the sink; the unpatched one leaks the NaN-box.
func TestEndToEndCorrectness(t *testing.T) {
	runWith := func(install bool) int64 {
		prog := asm.MustAssemble(holeSrc)
		var out bytes.Buffer
		m, err := machine.New(prog, &out)
		if err != nil {
			t.Fatal(err)
		}
		if install {
			p, err := Apply(prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			p.Install(m)
		}
		fpvm.Attach(m, fpvm.Config{System: arith.Vanilla{}})
		if err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		var v int64
		if _, err := fmtSscan(out.String(), &v); err != nil {
			t.Fatalf("parse %q: %v", out.String(), err)
		}
		return v
	}
	patched := runWith(true)
	unpatched := runWith(false)
	want := int64(math.Float64bits(1.0 / 3.0))
	if patched != want {
		t.Errorf("patched sink read %#x, want IEEE 1/3 %#x", patched, want)
	}
	if unpatched == want {
		t.Error("unpatched run should leak the box (that's the hole)")
	}
}

// fmtSscan is a minimal integer parser to avoid fmt.Sscan's space handling.
func fmtSscan(s string, v *int64) (int, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var x int64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		x = x*10 + int64(c-'0')
	}
	if neg {
		x = -x
	}
	*v = x
	return 1, nil
}

func TestApplyWithProvidedReport(t *testing.T) {
	prog := asm.MustAssemble(holeSrc)
	rep, err := vsa.Analyze(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Apply(prog, rep)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rep != rep {
		t.Error("provided report should be used as-is")
	}
}

func TestSummaryOutput(t *testing.T) {
	prog := asm.MustAssemble(holeSrc)
	p, err := Apply(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"sources", "sinks", "int-load"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCleanProgramNoSites(t *testing.T) {
	prog := asm.MustAssemble(`
		mov r0, $1
		outi r0
		halt
	`)
	p, err := Apply(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 0 {
		t.Fatalf("clean program has %d sites", len(p.Sites))
	}
}

func TestSiteIDsDistinct(t *testing.T) {
	prog := asm.MustAssemble(`
.data
a: .f64 1.0
s1: .zero 8
s2: .zero 8
.text
	movsd f0, [a]
	movsd [s1], f0
	movsd [s2], f0
	mov r0, [s1]
	mov r1, [s2]
	outi r0
	outi r1
	halt
	`)
	p, err := Apply(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(p.Sites))
	}
	seen := map[int64]bool{}
	for _, id := range p.Sites {
		if seen[id] {
			t.Fatal("duplicate site id")
		}
		seen[id] = true
	}
}
