// Package patch turns a VSA report into the correctness traps of §4.2: the
// e9patch analog. Each sink instruction is registered as a correctness site
// so that the machine delivers a trap to FPVM immediately before executing
// it; FPVM demotes any NaN-boxed operand in place and the instruction is
// then re-executed natively — the paper's "explicitly trap to FPVM ... and
// re-execute the instruction by using the x64's trap mode to do single
// instruction stepping".
package patch

import (
	"fmt"
	"io"

	"fpvm/internal/isa"
	"fpvm/internal/machine"
	"fpvm/internal/vsa"
)

// Patched bundles a program with its correctness-site table.
type Patched struct {
	Prog  *isa.Program
	Sites map[uint64]int64 // instruction address → site id
	Rep   *vsa.Report
}

// Apply analyzes prog (if rep is nil) and produces the patched image.
func Apply(prog *isa.Program, rep *vsa.Report) (*Patched, error) {
	if rep == nil {
		var err error
		rep, err = vsa.Analyze(prog, 0)
		if err != nil {
			return nil, err
		}
	}
	p := &Patched{
		Prog:  prog,
		Sites: make(map[uint64]int64, len(rep.Sinks)),
		Rep:   rep,
	}
	for i, s := range rep.Sinks {
		p.Sites[s.Addr] = int64(i + 1)
	}
	return p, nil
}

// Install loads the correctness sites into a machine running the program,
// populating the machine's per-instruction side-table slots.
func (p *Patched) Install(m *machine.Machine) {
	for addr, site := range p.Sites {
		m.SetCorrectnessSite(addr, site)
	}
}

// Summary writes a human-readable report of what was patched.
func (p *Patched) Summary(w io.Writer) {
	fmt.Fprintf(w, "static analysis: %d instructions, %d fixpoint steps\n",
		p.Rep.Insts, p.Rep.Iterations)
	fmt.Fprintf(w, "  sources (FP stores):     %d\n", len(p.Rep.Sources))
	fmt.Fprintf(w, "  sinks (correctness traps): %d\n", len(p.Rep.Sinks))
	fmt.Fprintf(w, "  external call sites:     %d\n", len(p.Rep.Externals))
	fmt.Fprintf(w, "  tainted intervals:       %d (imprecise=%v)\n",
		p.Rep.TaintedIvs, p.Rep.Imprecise)
	for _, s := range p.Rep.Sinks {
		fmt.Fprintf(w, "    %#06x  %-28v  %s\n", s.Addr, s.Inst, s.Reason)
	}
}
