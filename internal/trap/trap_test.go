package trap

import "testing"

func TestProfilesOrderingInvariants(t *testing.T) {
	for _, p := range Profiles() {
		user := p.RoundTripCycles(DeliverUserSignal)
		kern := p.RoundTripCycles(DeliverKernel)
		u2u := p.RoundTripCycles(DeliverUserToUser)
		direct := p.RoundTripCycles(DeliverDirectCall)
		if !(user > kern && kern > u2u && u2u >= direct) {
			t.Errorf("%s: delivery costs not ordered: user=%d kern=%d u2u=%d direct=%d",
				p.Name, user, kern, u2u, direct)
		}
		// Paper Figure 14: kernel delivery 7–30× cheaper.
		ratio := float64(user) / float64(kern)
		if ratio < 6.5 || ratio > 31 {
			t.Errorf("%s: user/kernel ratio %.1f outside 7–30x", p.Name, ratio)
		}
		// §6.2: user→user in the ~100-cycle class.
		if u2u < 50 || u2u > 300 {
			t.Errorf("%s: user→user %d cycles not TSX-abort class", p.Name, u2u)
		}
		// Entry+exit must equal the round trip.
		if p.EntryCycles(DeliverUserSignal)+p.ExitCycles(DeliverUserSignal) != user {
			t.Errorf("%s: entry+exit != round trip", p.Name)
		}
	}
}

func TestBreakdownSumsBelowRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		hw, kern := p.Breakdown()
		if hw+kern != p.RoundTripCycles(DeliverUserSignal) {
			t.Errorf("%s: breakdown %d+%d != round trip %d",
				p.Name, hw, kern, p.RoundTripCycles(DeliverUserSignal))
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	p := &R815
	for i := 0; i < 10; i++ {
		s.Record(p, DeliverUserSignal)
	}
	if s.Delivered != 10 {
		t.Errorf("delivered = %d", s.Delivered)
	}
	want := 10 * p.RoundTripCycles(DeliverUserSignal)
	if s.TotalCycles() != want {
		t.Errorf("total = %d, want %d", s.TotalCycles(), want)
	}
	s.Record(p, DeliverKernel)
	if s.Delivered != 11 || s.TotalCycles() != want+p.RoundTripCycles(DeliverKernel) {
		t.Error("mixed-kind accumulation wrong")
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		DeliverUserSignal: "user-signal",
		DeliverKernel:     "kernel",
		DeliverUserToUser: "user-to-user",
		DeliverDirectCall: "direct-call",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestUnknownKindCostsZero(t *testing.T) {
	p := &R815
	if p.EntryCycles(Kind(99)) != 0 || p.ExitCycles(Kind(99)) != 0 {
		t.Error("unknown kind should cost nothing")
	}
}
