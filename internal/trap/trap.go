// Package trap models the delivery path of a floating point exception from
// the hardware to a handler, with cycle costs calibrated to the measurements
// quoted in the FPVM paper (Figure 9's overhead breakdown and Figure 14's
// user-level vs kernel-level delivery comparison).
//
// In the real system the path is: the FPU raises a precise fault → microcode
// saves state and vectors to the kernel → the kernel builds a signal frame
// and returns to the user-level SIGFPE handler → the handler (FPVM) runs →
// sigreturn unwinds back. Section 6 of the paper explores cheaper paths: a
// kernel-module FPVM (skip the kernel→user leg) and a hypothetical
// user→user "pipeline interrupt" (~100 cycles, cf. TSX abort measurements).
//
// The machine simulator charges these costs on every delivered trap, so
// per-trap cost breakdowns and whole-program slowdowns are deterministic.
package trap

import "fmt"

// Kind selects a delivery path for FP (and correctness) traps.
type Kind uint8

const (
	// DeliverUserSignal is the stock Linux path used by the FPVM
	// prototype: hardware fault → kernel → SIGFPE → user handler →
	// sigreturn. This is the baseline of Figures 9 and 12.
	DeliverUserSignal Kind = iota
	// DeliverKernel models FPVM as a kernel module (§6.1): the handler
	// runs at kernel level, skipping signal-frame construction and the
	// kernel→user→kernel round trip.
	DeliverKernel
	// DeliverUserToUser models the hypothetical same-privilege "pipeline
	// interrupt" delivery of §6.2 (RISC-V "N"-extension style), measured
	// by the authors at TSX-abort-like costs.
	DeliverUserToUser
	// DeliverDirectCall models the §5.3 remark that correctness traps
	// could be replaced by direct call instructions to the FPVM entry
	// point, avoiding trap delivery entirely.
	DeliverDirectCall
)

func (k Kind) String() string {
	switch k {
	case DeliverUserSignal:
		return "user-signal"
	case DeliverKernel:
		return "kernel"
	case DeliverUserToUser:
		return "user-to-user"
	case DeliverDirectCall:
		return "direct-call"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CostProfile holds per-machine delivery costs in cycles. The three concrete
// profiles below stand in for the paper's three test machines; their ratios
// (kernel delivery 7–30× cheaper than user delivery) follow Figure 14.
type CostProfile struct {
	Name string

	// HWEntry is the microcode cost of taking the precise fault:
	// pipeline flush, state save, vectoring.
	HWEntry uint64
	// KernelDispatch covers kernel entry, exception routing, and
	// signal-queue work.
	KernelDispatch uint64
	// UserFrame covers building the signal frame, entering the user
	// handler, and the eventual sigreturn round trip.
	UserFrame uint64
	// HWReturn is the iret-style cost of resuming the faulting context.
	HWReturn uint64
	// KernelRT is the measured round-trip cost of delivering to a
	// kernel-level handler (Figure 14's right-hand column): vectoring,
	// minimal state save, handler dispatch, and return, with no signal
	// frame or privilege round trip. The user/kernel ratios of the three
	// profiles follow the paper's 7–30×.
	KernelRT uint64
	// UserToUser is the cost of the hypothetical pipeline-interrupt
	// delivery (entry + exit), measured ~100 cycles on TSX hardware.
	UserToUser uint64
	// DirectCall is the cost of a patched-in call to the FPVM entry point.
	DirectCall uint64
}

// Predefined machine profiles. R815 is the primary testbed (4× AMD Opteron
// 6272); Dell7220 and R730xd are the two newer Xeon machines of Figure 12.
var (
	R815 = CostProfile{
		Name:           "R815",
		HWEntry:        1800,
		KernelDispatch: 3200,
		UserFrame:      3000,
		HWReturn:       1100,
		KernelRT:       1300, // user/kernel ≈ 7× (AMD 6272 in Figure 14)
		UserToUser:     110,
		DirectCall:     35,
	}
	Dell7220 = CostProfile{
		Name:           "7220",
		HWEntry:        900,
		KernelDispatch: 1700,
		UserFrame:      1900,
		HWReturn:       600,
		KernelRT:       340, // user/kernel ≈ 15×
		UserToUser:     100,
		DirectCall:     25,
	}
	R730xd = CostProfile{
		Name:           "R730xd",
		HWEntry:        1100,
		KernelDispatch: 2000,
		UserFrame:      2200,
		HWReturn:       700,
		KernelRT:       200, // user/kernel ≈ 30×
		UserToUser:     100,
		DirectCall:     30,
	}
)

// Profiles lists the predefined machine profiles in paper order.
func Profiles() []*CostProfile {
	return []*CostProfile{&R815, &Dell7220, &R730xd}
}

// EntryCycles returns the cycles charged before the handler runs.
func (p *CostProfile) EntryCycles(k Kind) uint64 {
	switch k {
	case DeliverUserSignal:
		return p.HWEntry + p.KernelDispatch + p.UserFrame
	case DeliverKernel:
		return p.KernelRT - p.KernelRT/3
	case DeliverUserToUser:
		return p.UserToUser / 2
	case DeliverDirectCall:
		return p.DirectCall / 2
	default:
		return 0
	}
}

// ExitCycles returns the cycles charged after the handler returns.
func (p *CostProfile) ExitCycles(k Kind) uint64 {
	switch k {
	case DeliverUserSignal:
		return p.HWReturn
	case DeliverKernel:
		return p.KernelRT / 3
	case DeliverUserToUser:
		return p.UserToUser - p.UserToUser/2
	case DeliverDirectCall:
		return p.DirectCall - p.DirectCall/2
	default:
		return 0
	}
}

// RoundTripCycles returns the full deliver-and-return cost with an empty
// handler, the quantity Figure 14 tabulates.
func (p *CostProfile) RoundTripCycles(k Kind) uint64 {
	return p.EntryCycles(k) + p.ExitCycles(k)
}

// Breakdown reports the hardware-attributed and kernel-attributed parts of
// a user-signal delivery, the two bottom bars of the Figure 9 stacks.
func (p *CostProfile) Breakdown() (hardware, kernel uint64) {
	return p.HWEntry + p.HWReturn, p.KernelDispatch + p.UserFrame
}

// Stats accumulates trap-delivery accounting for one run.
type Stats struct {
	Delivered   uint64 // number of traps delivered
	EntryCycles uint64 // total cycles spent entering handlers
	ExitCycles  uint64 // total cycles spent returning
}

// Record charges one delivery round trip to the stats. The machine calls it
// once per deliverTrap, so under sequence emulation a whole coalesced run of
// instructions is charged exactly one round trip — that amortization is the
// entire point of coalescing.
func (s *Stats) Record(p *CostProfile, k Kind) {
	s.Delivered++
	s.EntryCycles += p.EntryCycles(k)
	s.ExitCycles += p.ExitCycles(k)
}

// TotalCycles returns all cycles attributed to trap delivery.
func (s *Stats) TotalCycles() uint64 { return s.EntryCycles + s.ExitCycles }
