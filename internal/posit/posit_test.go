package posit

import (
	"math"
	"math/rand"
	"testing"

	"fpvm/internal/mpfr"
)

func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		cfg  Config
		v    float64
		want Posit
	}{
		{Posit16, 1, 0x4000},
		{Posit16, -1, 0xC000},
		{Posit16, 2, 0x5000},   // k=0 e=1: 0 10 1 0...
		{Posit16, 4, 0x6000},   // k=1: 0 110 0 0...
		{Posit16, 0.5, 0x3000}, // e=-1 → k=-1,e=1: 0 01 1 0...
		{Posit16, 1.5, 0x4800},
		{Posit8, 1, 0x40},
		{Posit8, 2, 0x60}, // es=0: k=1: 0 110 00000? width 8: 0 10... wait k=1: 0 110 0000 = 0x60
		{Posit8, 0.5, 0x20},
		{Posit8, -2, 0xA0},
		{Posit32, 1, 0x40000000},
	}
	for _, c := range cases {
		if got := c.cfg.FromFloat64(c.v); got != c.want {
			t.Errorf("%v FromFloat64(%g) = %#x, want %#x", c.cfg, c.v, got, c.want)
		}
		if got := c.cfg.ToFloat64(c.want); got != c.v {
			t.Errorf("%v ToFloat64(%#x) = %g, want %g", c.cfg, c.want, got, c.v)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	for _, cfg := range []Config{Posit8, Posit16, Posit32, Posit64} {
		if !cfg.IsNaR(cfg.FromFloat64(math.NaN())) {
			t.Errorf("%v: NaN should map to NaR", cfg)
		}
		if !cfg.IsNaR(cfg.FromFloat64(math.Inf(1))) {
			t.Errorf("%v: +Inf should map to NaR", cfg)
		}
		if !cfg.IsZero(cfg.FromFloat64(0)) {
			t.Errorf("%v: 0 should map to zero", cfg)
		}
		if !math.IsNaN(cfg.ToFloat64(cfg.NaR())) {
			t.Errorf("%v: NaR should map to NaN", cfg)
		}
		if cfg.ToFloat64(cfg.Zero()) != 0 {
			t.Errorf("%v: zero should map to 0", cfg)
		}
		// Neg fixpoints.
		if cfg.Neg(cfg.NaR()) != cfg.NaR() {
			t.Errorf("%v: -NaR should be NaR", cfg)
		}
		if cfg.Neg(cfg.Zero()) != cfg.Zero() {
			t.Errorf("%v: -0 should be 0", cfg)
		}
	}
}

// TestRoundTripExhaustive16 checks that every posit16 value survives
// posit → mpfr → posit unchanged (the conversion pair is exact).
func TestRoundTripExhaustive16(t *testing.T) {
	cfg := Posit16
	f := mpfr.New(64)
	for p := uint64(0); p < 1<<16; p++ {
		cfg.ToMPFR(Posit(p), f)
		back := cfg.FromMPFR(f, false)
		if back != Posit(p) {
			t.Fatalf("posit16 %#04x → %s → %#04x", p, f, back)
		}
	}
}

func TestRoundTripExhaustive8(t *testing.T) {
	cfg := Posit8
	f := mpfr.New(64)
	for p := uint64(0); p < 1<<8; p++ {
		cfg.ToMPFR(Posit(p), f)
		back := cfg.FromMPFR(f, false)
		if back != Posit(p) {
			t.Fatalf("posit8 %#02x → %s → %#02x", p, f, back)
		}
	}
}

// TestEncodingMonotonic verifies that the posit ordering matches the real
// ordering of the represented values, the property our rounding relies on.
func TestEncodingMonotonic(t *testing.T) {
	cfg := Posit16
	prev := math.Inf(-1)
	// Walk the signed patterns from most negative to most positive,
	// skipping NaR (the smallest signed pattern).
	for i := -(1 << 15) + 1; i < 1<<15; i++ {
		p := Posit(uint64(i) & cfg.mask())
		v := cfg.ToFloat64(p)
		if v <= prev {
			t.Fatalf("monotonicity violated at pattern %#04x: %g after %g", p, v, prev)
		}
		prev = v
	}
}

// nearestBySearch finds the posit closest to the exact value x by linear
// search over the whole lattice — an oracle for exhaustive small-format tests.
func nearestBySearch(cfg Config, x *mpfr.Float) Posit {
	best := Posit(0)
	bestDist := mpfr.New(128)
	bestDist.SetInf(1)
	cur := mpfr.New(64)
	d := mpfr.New(128)
	var bestEven bool
	for raw := uint64(0); raw < uint64(1)<<cfg.NBits; raw++ {
		p := Posit(raw)
		if cfg.IsNaR(p) {
			continue
		}
		// The posit standard never rounds a nonzero value to zero
		// (it rounds to ±minpos instead), so exclude 0 as a candidate.
		if p == 0 && !x.IsZero() {
			continue
		}
		cfg.ToMPFR(p, cur)
		d.Sub(cur, x, mpfr.RoundNearestEven)
		d.Abs(d, mpfr.RoundNearestEven)
		c := d.Cmp(bestDist)
		even := raw&1 == 0
		if c < 0 || (c == 0 && even && !bestEven) {
			best, bestEven = p, even
			bestDist.Set(d, mpfr.RoundNearestEven)
		}
	}
	return best
}

// TestAddExhaustive8 checks posit8 addition against exact computation plus
// nearest-posit search for every operand pair.
func TestAddExhaustive8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive")
	}
	cfg := Posit8
	xa, xb := mpfr.New(32), mpfr.New(32)
	sum := mpfr.New(80)
	for a := uint64(0); a < 256; a++ {
		for b := a; b < 256; b++ {
			pa, pb := Posit(a), Posit(b)
			got := cfg.Add(pa, pb)
			if cfg.IsNaR(pa) || cfg.IsNaR(pb) {
				if !cfg.IsNaR(got) {
					t.Fatalf("NaR + x should be NaR")
				}
				continue
			}
			cfg.ToMPFR(pa, xa)
			cfg.ToMPFR(pb, xb)
			sum.Add(xa, xb, mpfr.RoundNearestEven) // exact: 80 bits ≫ needed
			want := nearestBySearch(cfg, sum)
			if got != want {
				t.Fatalf("posit8 %#02x + %#02x = %#02x, want %#02x (exact %s)",
					a, b, got, want, sum)
			}
		}
	}
}

// TestMulSampled8 checks posit8 multiplication on a sampled grid.
func TestMulSampled8(t *testing.T) {
	cfg := Posit8
	xa, xb := mpfr.New(32), mpfr.New(32)
	prod := mpfr.New(80)
	r := rand.New(rand.NewSource(30))
	for i := 0; i < 4000; i++ {
		a, b := uint64(r.Intn(256)), uint64(r.Intn(256))
		pa, pb := Posit(a), Posit(b)
		got := cfg.Mul(pa, pb)
		if cfg.IsNaR(pa) || cfg.IsNaR(pb) {
			if !cfg.IsNaR(got) {
				t.Fatal("NaR * x should be NaR")
			}
			continue
		}
		cfg.ToMPFR(pa, xa)
		cfg.ToMPFR(pb, xb)
		prod.Mul(xa, xb, mpfr.RoundNearestEven)
		want := nearestBySearch(cfg, prod)
		if got != want {
			t.Fatalf("posit8 %#02x * %#02x = %#02x, want %#02x (exact %s)",
				a, b, got, want, prod)
		}
	}
}

func TestDivSampled8(t *testing.T) {
	cfg := Posit8
	xa, xb := mpfr.New(32), mpfr.New(32)
	q := mpfr.New(200)
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 4000; i++ {
		a, b := uint64(r.Intn(256)), uint64(r.Intn(256))
		pa, pb := Posit(a), Posit(b)
		got := cfg.Div(pa, pb)
		if cfg.IsNaR(pa) || cfg.IsNaR(pb) || cfg.IsZero(pb) {
			if !cfg.IsNaR(got) {
				t.Fatal("NaR or /0 should be NaR")
			}
			continue
		}
		cfg.ToMPFR(pa, xa)
		cfg.ToMPFR(pb, xb)
		q.Div(xa, xb, mpfr.RoundNearestEven) // 200 bits ≈ exact vs 8-bit lattice
		want := nearestBySearch(cfg, q)
		if got != want {
			t.Fatalf("posit8 %#02x / %#02x = %#02x, want %#02x", a, b, got, want)
		}
	}
}

func TestSqrtExhaustive8(t *testing.T) {
	cfg := Posit8
	x := mpfr.New(32)
	rt := mpfr.New(200)
	for a := uint64(0); a < 256; a++ {
		pa := Posit(a)
		got := cfg.Sqrt(pa)
		if cfg.IsNaR(pa) || (cfg.signBit(pa) && !cfg.IsZero(pa)) {
			if !cfg.IsNaR(got) {
				t.Fatalf("sqrt(%#02x) should be NaR", a)
			}
			continue
		}
		if cfg.IsZero(pa) {
			if !cfg.IsZero(got) {
				t.Fatal("sqrt(0) should be 0")
			}
			continue
		}
		cfg.ToMPFR(pa, x)
		rt.Sqrt(x, mpfr.RoundNearestEven)
		want := nearestBySearch(cfg, rt)
		if got != want {
			t.Fatalf("sqrt(%#02x) = %#02x, want %#02x", a, got, want)
		}
	}
}

func TestSaturation(t *testing.T) {
	cfg := Posit16
	// maxpos * maxpos saturates to maxpos, not NaR.
	if got := cfg.Mul(cfg.MaxPos(), cfg.MaxPos()); got != cfg.MaxPos() {
		t.Errorf("maxpos² = %#x, want maxpos", got)
	}
	// minpos * minpos saturates to minpos (not zero).
	if got := cfg.Mul(cfg.MinPos(), cfg.MinPos()); got != cfg.MinPos() {
		t.Errorf("minpos² = %#x, want minpos", got)
	}
	// Huge float64 saturates.
	if got := cfg.FromFloat64(1e300); got != cfg.MaxPos() {
		t.Errorf("FromFloat64(1e300) = %#x, want maxpos", got)
	}
	if got := cfg.FromFloat64(-1e300); got != cfg.Neg(cfg.MaxPos()) {
		t.Errorf("FromFloat64(-1e300) = %#x, want -maxpos", got)
	}
	if got := cfg.FromFloat64(1e-300); got != cfg.MinPos() {
		t.Errorf("FromFloat64(1e-300) = %#x, want minpos", got)
	}
}

func TestCmpOrdering(t *testing.T) {
	cfg := Posit16
	vals := []float64{-100, -1.5, -1, -0.001, 0, 0.5, 1, 1.5, 2, 1000}
	for i := range vals {
		for j := range vals {
			a, b := cfg.FromFloat64(vals[i]), cfg.FromFloat64(vals[j])
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got := cfg.Cmp(a, b); got != want {
				t.Errorf("Cmp(%g, %g) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
	// NaR sorts below everything.
	if cfg.Cmp(cfg.NaR(), cfg.FromFloat64(-1e30)) != -1 {
		t.Error("NaR should sort below all reals")
	}
}

func TestPosit32RoundTripFloats(t *testing.T) {
	cfg := Posit32
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 5000; i++ {
		v := (r.Float64() - 0.5) * math.Exp2(float64(r.Intn(40)-20))
		p := cfg.FromFloat64(v)
		back := cfg.ToFloat64(p)
		if v == 0 {
			continue
		}
		// Expected fraction bits at this scale: 32 − 1 (sign) − regime − 2 (exp).
		scale := math.Floor(math.Log2(math.Abs(v)))
		k := math.Floor(scale / 4)
		regimeLen := -k + 1
		if k >= 0 {
			regimeLen = k + 2
		}
		fracBits := 32 - 1 - regimeLen - 2
		if math.Abs(back-v)/math.Abs(v) > math.Exp2(-fracBits) {
			t.Fatalf("posit32 roundtrip %g → %g too lossy (frac bits %g)", v, back, fracBits)
		}
	}
}

func TestFMAPosit(t *testing.T) {
	cfg := Posit32
	a := cfg.FromFloat64(1.0000001)
	// FMA(a, a, -1) should differ from Mul-then-Add when the product's low
	// bits matter; just check against exact computation.
	xa := mpfr.New(40)
	cfg.ToMPFR(a, xa)
	exact := mpfr.New(200)
	negOne := mpfr.New(8)
	negOne.SetInt64(-1, mpfr.RoundNearestEven)
	exact.FMA(xa, xa, negOne, mpfr.RoundNearestEven)
	want := cfg.FromMPFR(exact, false)
	if got := cfg.FMA(a, a, cfg.FromFloat64(-1)); got != want {
		t.Errorf("FMA = %#x, want %#x", got, want)
	}
}

func TestNegSym(t *testing.T) {
	cfg := Posit16
	r := rand.New(rand.NewSource(33))
	for i := 0; i < 2000; i++ {
		p := Posit(uint64(r.Intn(1 << 16)))
		if cfg.IsNaR(p) {
			continue
		}
		if cfg.Neg(cfg.Neg(p)) != p {
			t.Fatalf("double negation of %#x", p)
		}
		if v := cfg.ToFloat64(cfg.Neg(p)); v != -cfg.ToFloat64(p) {
			t.Fatalf("Neg(%#x) value %g != -%g", p, v, cfg.ToFloat64(p))
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Config{Posit8, Posit16, Posit32, Posit64, {NBits: 3, ES: 0}, {NBits: 20, ES: 4}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v should validate: %v", c, err)
		}
	}
	bad := []Config{{NBits: 2, ES: 0}, {NBits: 65, ES: 1}, {NBits: 16, ES: 6}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%v should fail validation", c)
		}
	}
}

func BenchmarkPosit32Add(b *testing.B) {
	cfg := Posit32
	x, y := cfg.FromFloat64(1.5), cfg.FromFloat64(2.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Add(x, y)
	}
}

func BenchmarkPosit32Mul(b *testing.B) {
	cfg := Posit32
	x, y := cfg.FromFloat64(1.5), cfg.FromFloat64(2.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Mul(x, y)
	}
}
