// Package posit implements posit arithmetic (Gustafson's unum type III) for
// configurable width and exponent size, playing the role of the Universal
// Numbers Library in the FPVM paper's alternative arithmetic lineup (§4.3).
//
// A posit<nbits, es> is stored in the low nbits of a uint64 in two's
// complement. The encoding is sign, then a variable-length regime run, then
// up to es exponent bits, then fraction bits. Because posit encodings are
// monotonic in the represented value, round-to-nearest-even can be performed
// directly on the bit pattern: truncate, inspect guard/sticky, and add one
// to move to the adjacent posit.
//
// Arithmetic is computed exactly (or truncated-with-sticky) in package
// mpfr and rounded once to the posit lattice, so every operation is
// correctly rounded per the posit standard, including saturation to
// maxpos/minpos rather than overflow to infinity.
package posit

import (
	"fmt"
	"math"

	"fpvm/internal/mpfr"
	"fpvm/internal/mpnat"
)

// Posit is a posit bit pattern. Only the low Config.NBits bits are
// significant; they are kept zero-extended (not sign-extended).
type Posit uint64

// Config selects a posit format. Standard formats are posit<8,0>,
// posit<16,1>, posit<32,2>, and posit<64,3>; any NBits in [3, 64] and
// ES in [0, 5] is supported.
type Config struct {
	NBits uint // total width in bits, 3..64
	ES    uint // exponent field size, 0..5
}

// Standard posit formats.
var (
	Posit8  = Config{NBits: 8, ES: 0}
	Posit16 = Config{NBits: 16, ES: 1}
	Posit32 = Config{NBits: 32, ES: 2}
	Posit64 = Config{NBits: 64, ES: 3}
)

func (c Config) String() string { return fmt.Sprintf("posit<%d,%d>", c.NBits, c.ES) }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NBits < 3 || c.NBits > 64 {
		return fmt.Errorf("posit: NBits %d out of range [3,64]", c.NBits)
	}
	if c.ES > 5 {
		return fmt.Errorf("posit: ES %d out of range [0,5]", c.ES)
	}
	return nil
}

func (c Config) mask() uint64 { return (uint64(1) << c.NBits) - 1 }

// Zero returns the posit representing 0.
func (c Config) Zero() Posit { return 0 }

// NaR returns the Not-a-Real pattern (100...0), posit's single exception
// value, standing in for every IEEE NaN and infinity.
func (c Config) NaR() Posit { return Posit(uint64(1) << (c.NBits - 1)) }

// MaxPos returns the largest positive posit (011...1).
func (c Config) MaxPos() Posit { return Posit(uint64(1)<<(c.NBits-1) - 1) }

// MinPos returns the smallest positive posit (000...1).
func (c Config) MinPos() Posit { return 1 }

// IsNaR reports whether p is the NaR pattern.
func (c Config) IsNaR(p Posit) bool { return p == c.NaR() }

// IsZero reports whether p is zero.
func (c Config) IsZero(p Posit) bool { return p == 0 }

// Neg returns -p (two's complement negation). Neg(NaR) = NaR, Neg(0) = 0.
func (c Config) Neg(p Posit) Posit {
	return Posit((-uint64(p)) & c.mask())
}

// Abs returns |p|.
func (c Config) Abs(p Posit) Posit {
	if c.signBit(p) && !c.IsNaR(p) {
		return c.Neg(p)
	}
	return p
}

func (c Config) signBit(p Posit) bool {
	return uint64(p)>>(c.NBits-1)&1 == 1
}

// signExtend returns p as a signed integer for ordering comparisons.
func (c Config) signExtend(p Posit) int64 {
	shift := 64 - c.NBits
	return int64(uint64(p)<<shift) >> shift
}

// Cmp compares two posits, returning -1, 0, or +1. Per the posit standard,
// comparison is exactly signed-integer comparison of the bit patterns, with
// NaR ordering below every real value.
func (c Config) Cmp(a, b Posit) int {
	ia, ib := c.signExtend(a), c.signExtend(b)
	switch {
	case ia < ib:
		return -1
	case ia > ib:
		return 1
	default:
		return 0
	}
}

// decoded carries the fields of a finite nonzero posit.
type decoded struct {
	neg     bool
	scale   int64  // power-of-two scale of the leading fraction bit
	frac    uint64 // fraction bits, without the hidden leading 1
	fracLen uint   // number of fraction bits present
}

// decode splits a nonzero, non-NaR posit into its fields.
func (c Config) decode(p Posit) decoded {
	var d decoded
	bits := uint64(p) & c.mask()
	if c.signBit(p) {
		d.neg = true
		bits = (-bits) & c.mask()
	}
	// Drop the sign bit; remaining nbits-1 bits hold regime/exp/fraction.
	width := c.NBits - 1
	rem := bits & ((uint64(1) << width) - 1)

	// Regime: run of identical leading bits.
	lead := rem >> (width - 1) & 1
	runLen := uint(0)
	for i := int(width) - 1; i >= 0 && rem>>uint(i)&1 == lead; i-- {
		runLen++
	}
	var k int64
	if lead == 1 {
		k = int64(runLen) - 1
	} else {
		k = -int64(runLen)
	}
	// Consume the run plus its terminator (if present).
	consumed := runLen
	if consumed < width {
		consumed++ // the opposite-valued terminator bit
	}
	rest := width - consumed

	// Exponent: next up to es bits, zero-padded when truncated.
	var e uint64
	expBits := c.ES
	if rest < expBits {
		expBits = rest
	}
	if expBits > 0 {
		e = rem >> (rest - expBits) & ((uint64(1) << expBits) - 1)
	}
	e <<= c.ES - expBits // pad truncated exponent with zeros

	// Fraction: whatever remains.
	fracLen := rest - expBits
	frac := rem & ((uint64(1) << fracLen) - 1)

	d.scale = k<<c.ES + int64(e)
	d.frac = frac
	d.fracLen = fracLen
	return d
}

// ToMPFR sets dst to the exact value of p. NaR becomes NaN. dst should have
// at least NBits precision for exactness.
func (c Config) ToMPFR(p Posit, dst *mpfr.Float) {
	switch {
	case c.IsZero(p):
		dst.SetZero(1)
		return
	case c.IsNaR(p):
		dst.SetNaN()
		return
	}
	d := c.decode(p)
	// value = ±(1.frac) × 2^scale = ±(2^fracLen + frac) × 2^(scale−fracLen)
	m := uint64(1)<<d.fracLen | d.frac
	if d.neg {
		dst.SetInt64(-int64(m), mpfr.RoundNearestEven)
	} else {
		dst.SetUint64(m, mpfr.RoundNearestEven)
	}
	dst.Mul2Exp(dst, d.scale-int64(d.fracLen), mpfr.RoundNearestEven)
}

// ToFloat64 converts p to the nearest float64.
func (c Config) ToFloat64(p Posit) float64 {
	f := mpfr.New(c.NBits + 2)
	c.ToMPFR(p, f)
	return f.Float64(mpfr.RoundNearestEven)
}

// FromFloat64 converts v to the nearest posit (NaN and ±Inf become NaR).
func (c Config) FromFloat64(v float64) Posit {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return c.NaR()
	}
	f := mpfr.New(64)
	f.SetFloat64(v, mpfr.RoundNearestEven)
	return c.FromMPFR(f, false)
}

// FromMPFR rounds f to the nearest posit (ties to even pattern, saturating
// at maxpos/minpos). sticky indicates that f is a truncated-toward-zero
// approximation with nonzero discarded bits below its mantissa, as produced
// by an mpfr operation in RoundTowardZero whose ternary value was nonzero.
func (c Config) FromMPFR(f *mpfr.Float, sticky bool) Posit {
	if f.IsNaN() || f.IsInf() {
		return c.NaR()
	}
	if f.IsZero() {
		if sticky {
			// A nonzero exact value truncated to zero: rounds to ±minpos.
			if f.Signbit() {
				return c.Neg(c.MinPos())
			}
			return c.MinPos()
		}
		return 0
	}

	mant, exp, neg := f.MantExp()
	scale := exp - 1 // leading mantissa bit has weight 2^(exp-1)

	// Fast saturation to maxpos/minpos: beyond these scales no rounding
	// decision can reach an interior posit.
	maxScale := int64(c.NBits-2) << c.ES
	if scale > maxScale {
		return c.signed(c.MaxPos(), neg)
	}
	if scale < -maxScale {
		return c.signed(c.MinPos(), neg)
	}

	// Split the scale into regime and exponent fields.
	k := scale >> c.ES
	e := uint64(scale - k<<c.ES)

	// Assemble the unrounded pattern [0][regime][exp][fraction…] into a Nat,
	// tracking the total length. The fraction is the mantissa without its
	// leading bit.
	fracLen := uint(mant.BitLen() - 1)
	frac := mpnat.Sub(mant, mpnat.Shl(mpnat.Nat{1}, fracLen)) // drop hidden bit

	var pattern mpnat.Nat
	var length uint
	if k >= 0 {
		// k+1 ones then a zero.
		runLen := uint(k) + 1
		pattern = mpnat.Sub(mpnat.Shl(mpnat.Nat{1}, runLen), mpnat.Nat{1}) // 1s
		pattern = mpnat.Shl(pattern, 1)                                    // terminator 0
		length = runLen + 1
	} else {
		// -k zeros then a one.
		pattern = mpnat.Nat{1}
		length = uint(-k) + 1
	}
	// Exponent bits.
	pattern = mpnat.Shl(pattern, c.ES)
	pattern = mpnat.Add(pattern, mpnat.FromUint64(e))
	length += c.ES
	// Fraction bits.
	pattern = mpnat.Shl(pattern, fracLen)
	pattern = mpnat.Add(pattern, frac)
	length += fracLen
	// Sign bit position: total value bits available are NBits-1.
	avail := c.NBits - 1

	var bits uint64
	if length <= avail {
		// Everything fits; shift into place, no rounding (sticky bits are
		// strictly below the last kept bit and the guard bit is zero).
		shifted := mpnat.Shl(pattern, avail-length)
		bits, _ = shifted.Uint64()
	} else {
		cut := length - avail
		kept := mpnat.Shr(pattern, cut)
		bits, _ = kept.Uint64()
		guard := pattern.Bit(int(cut)-1) == 1
		stickyLow := sticky
		if !stickyLow {
			for i := 0; i < int(cut)-1; i++ {
				if pattern.Bit(i) == 1 {
					stickyLow = true
					break
				}
			}
		}
		// Round to nearest, ties to even, directly on the pattern: posit
		// encodings are monotonic, so +1 yields the next posit.
		if guard && (stickyLow || bits&1 == 1) {
			bits++
		}
	}
	// Clamp: rounding cannot produce zero for a nonzero value, nor cross
	// into the NaR/sign half.
	if bits == 0 {
		bits = 1 // minpos
	}
	if bits > uint64(c.MaxPos()) {
		bits = uint64(c.MaxPos())
	}
	return c.signed(Posit(bits), neg)
}

func (c Config) signed(p Posit, neg bool) Posit {
	if neg {
		return c.Neg(p)
	}
	return p
}

// workPrec is the mpfr precision used for intermediate computations: wide
// enough that truncation-plus-sticky captures the exact result relative to
// any posit fraction.
func (c Config) workPrec() uint { return 2*c.NBits + 16 }

// binop computes op into a fresh working float from the exact values of a
// and b and rounds to the posit lattice.
func (c Config) binop(a, b Posit, op func(z, x, y *mpfr.Float) int) Posit {
	if c.IsNaR(a) || c.IsNaR(b) {
		return c.NaR()
	}
	x := mpfr.New(c.NBits + 2)
	y := mpfr.New(c.NBits + 2)
	c.ToMPFR(a, x)
	c.ToMPFR(b, y)
	z := mpfr.New(c.workPrec())
	t := op(z, x, y)
	if z.IsNaN() || z.IsInf() {
		return c.NaR()
	}
	return c.FromMPFR(z, t != 0)
}

// Add returns the correctly rounded posit sum a + b.
func (c Config) Add(a, b Posit) Posit {
	return c.binop(a, b, func(z, x, y *mpfr.Float) int {
		return z.Add(x, y, mpfr.RoundTowardZero)
	})
}

// Sub returns the correctly rounded posit difference a − b.
func (c Config) Sub(a, b Posit) Posit {
	return c.binop(a, b, func(z, x, y *mpfr.Float) int {
		return z.Sub(x, y, mpfr.RoundTowardZero)
	})
}

// Mul returns the correctly rounded posit product a × b.
func (c Config) Mul(a, b Posit) Posit {
	return c.binop(a, b, func(z, x, y *mpfr.Float) int {
		return z.Mul(x, y, mpfr.RoundTowardZero)
	})
}

// Div returns the correctly rounded posit quotient a / b; x/0 is NaR.
func (c Config) Div(a, b Posit) Posit {
	if c.IsZero(b) {
		return c.NaR() // posit division by zero is NaR, not infinity
	}
	return c.binop(a, b, func(z, x, y *mpfr.Float) int {
		return z.Div(x, y, mpfr.RoundTowardZero)
	})
}

// Sqrt returns the correctly rounded posit square root; negative → NaR.
func (c Config) Sqrt(a Posit) Posit {
	if c.IsNaR(a) || (c.signBit(a) && !c.IsZero(a)) {
		return c.NaR()
	}
	x := mpfr.New(c.NBits + 2)
	c.ToMPFR(a, x)
	z := mpfr.New(c.workPrec())
	t := z.Sqrt(x, mpfr.RoundTowardZero)
	return c.FromMPFR(z, t != 0)
}

// FMA returns the correctly rounded a×b + d with a single rounding.
func (c Config) FMA(a, b, d Posit) Posit {
	if c.IsNaR(a) || c.IsNaR(b) || c.IsNaR(d) {
		return c.NaR()
	}
	x := mpfr.New(c.NBits + 2)
	y := mpfr.New(c.NBits + 2)
	w := mpfr.New(c.NBits + 2)
	c.ToMPFR(a, x)
	c.ToMPFR(b, y)
	c.ToMPFR(d, w)
	z := mpfr.New(c.workPrec())
	t := z.FMA(x, y, w, mpfr.RoundTowardZero)
	if z.IsNaN() || z.IsInf() {
		return c.NaR()
	}
	return c.FromMPFR(z, t != 0)
}

// String renders p through float64 for diagnostics.
func (c Config) Format(p Posit) string {
	switch {
	case c.IsNaR(p):
		return "NaR"
	case c.IsZero(p):
		return "0"
	}
	return fmt.Sprintf("%g", c.ToFloat64(p))
}
