// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one testing.B benchmark per artifact, plus ablations of the design
// choices DESIGN.md calls out. Custom metrics carry the paper's quantities
// (cycles/trap, slowdown factors) alongside Go's ns/op.
//
// Run:  go test -bench=. -benchmem
package fpvm_test

import (
	"bytes"
	"io"
	"testing"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/experiments"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
	"fpvm/internal/mpfr"
	"fpvm/internal/patch"
	"fpvm/internal/posit"
	"fpvm/internal/trap"
	"fpvm/internal/workloads"
)

// runUnder executes a workload under FPVM with the given system and returns
// the machine and VM for metric extraction.
func runUnder(b *testing.B, key string, sys arith.System, cfg fpvm.Config) (*machine.Machine, *fpvm.VM) {
	b.Helper()
	w, ok := workloads.Get(key)
	if !ok {
		b.Fatalf("unknown workload %s", key)
	}
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(prog, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	if sys != nil {
		p, err := patch.Apply(prog, nil)
		if err != nil {
			b.Fatal(err)
		}
		p.Install(m)
		cfg.System = sys
		fv := fpvm.Attach(m, cfg)
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		return m, fv
	}
	if err := m.Run(0); err != nil {
		b.Fatal(err)
	}
	return m, nil
}

// BenchmarkFig9VirtualizationCost measures the average cost of virtualizing
// one floating point instruction (Figure 9), reporting cycles/trap.
func BenchmarkFig9VirtualizationCost(b *testing.B) {
	for _, key := range []string{"Lorenz Attractor/", "FBench/", "NAS CG/Class S"} {
		b.Run(key, func(b *testing.B) {
			var perTrap float64
			for i := 0; i < b.N; i++ {
				m, vm := runUnder(b, key, arith.NewMPFR(200), fpvm.Config{})
				c := vm.Stats.Cycles
				total := m.Stats.Trap.TotalCycles() + c.Decode + c.Bind + c.Emulate + c.GC + c.Correctness
				perTrap = float64(total) / float64(vm.Stats.Traps)
			}
			b.ReportMetric(perTrap, "cycles/trap")
		})
	}
}

// BenchmarkFig10GC measures a garbage collection pass over a populated
// machine (Figure 10), reporting shadow values freed per pass.
func BenchmarkFig10GC(b *testing.B) {
	prog, err := asm.Assemble(workloads.LorenzSource(400, 400, 0.02))
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(prog, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	vm := fpvm.Attach(m, fpvm.Config{System: arith.Vanilla{}, DisableGC: true})
	if err := m.Run(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.RunGC()
	}
	b.ReportMetric(float64(vm.Stats.GC.LastAlive), "alive")
	b.ReportMetric(float64(vm.Stats.GC.LastCycles), "cycles/pass")
}

// BenchmarkFig11MPFRPrecision measures this repository's MPFR operations as
// a function of precision (Figure 11).
func BenchmarkFig11MPFRPrecision(b *testing.B) {
	for _, prec := range []uint{64, 200, 1024, 8192} {
		x, y, z := mpfr.New(prec), mpfr.New(prec), mpfr.New(prec)
		x.SetUint64(2, mpfr.RoundNearestEven)
		x.Sqrt(x, mpfr.RoundNearestEven)
		y.SetUint64(3, mpfr.RoundNearestEven)
		y.Sqrt(y, mpfr.RoundNearestEven)
		b.Run(name("add", prec), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				z.Add(x, y, mpfr.RoundNearestEven)
			}
		})
		b.Run(name("mul", prec), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				z.Mul(x, y, mpfr.RoundNearestEven)
			}
		})
		b.Run(name("div", prec), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				z.Div(x, y, mpfr.RoundNearestEven)
			}
		})
	}
}

func name(op string, prec uint) string {
	return op + "/" + itoa(prec) + "bit"
}

func itoa(v uint) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

// BenchmarkFig12Slowdowns runs each benchmark natively and under FPVM+MPFR
// and reports the cycle-count slowdown (Figure 12, R815 column).
func BenchmarkFig12Slowdowns(b *testing.B) {
	keys := []string{"FBench/", "Lorenz Attractor/", "Three-Body/",
		"NAS IS/Class S", "NAS EP/Class S", "NAS CG/Class S",
		"NAS MG/Class S", "NAS LU/Class S", "Enzo/Cosmology Sim.",
		"miniAero/Flat Plate"}
	for _, key := range keys {
		b.Run(key, func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				native, _ := runUnder(b, key, nil, fpvm.Config{})
				virt, _ := runUnder(b, key, arith.NewMPFR(200), fpvm.Config{})
				slowdown = float64(virt.Cycles) / float64(native.Cycles)
			}
			b.ReportMetric(slowdown, "slowdown-x")
		})
	}
}

// BenchmarkFig13Lorenz regenerates the Figure 13 divergence data.
func BenchmarkFig13Lorenz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13Data(experiments.Options{W: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		if res.DivergenceStep < 0 {
			b.Fatal("no divergence")
		}
	}
}

// BenchmarkFig14TrapDelivery reports the modeled delivery round trips of
// the three machine profiles and three delivery kinds (Figure 14 / §6).
func BenchmarkFig14TrapDelivery(b *testing.B) {
	for _, p := range trap.Profiles() {
		b.Run(p.Name, func(b *testing.B) {
			var u, k, u2 uint64
			for i := 0; i < b.N; i++ {
				u = p.RoundTripCycles(trap.DeliverUserSignal)
				k = p.RoundTripCycles(trap.DeliverKernel)
				u2 = p.RoundTripCycles(trap.DeliverUserToUser)
			}
			b.ReportMetric(float64(u), "user-cycles")
			b.ReportMetric(float64(k), "kernel-cycles")
			b.ReportMetric(float64(u2), "u2u-cycles")
		})
	}
}

// BenchmarkTrapAndPatch compares §3.2's two virtualization mechanisms on a
// workload where every FP op rounds (trap-and-patch should win).
func BenchmarkTrapAndPatch(b *testing.B) {
	src := workloads.LorenzSource(300, 300, 0.02)
	run := func(b *testing.B, patchMode bool) uint64 {
		prog, err := asm.Assemble(src)
		if err != nil {
			b.Fatal(err)
		}
		m, err := machine.New(prog, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		vm := fpvm.Attach(m, fpvm.Config{System: arith.Vanilla{}})
		if patchMode {
			vm.PatchAllFPArith()
		}
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		return m.Cycles
	}
	b.Run("trap-and-emulate", func(b *testing.B) {
		var c uint64
		for i := 0; i < b.N; i++ {
			c = run(b, false)
		}
		b.ReportMetric(float64(c), "sim-cycles")
	})
	b.Run("trap-and-patch", func(b *testing.B) {
		var c uint64
		for i := 0; i < b.N; i++ {
			c = run(b, true)
		}
		b.ReportMetric(float64(c), "sim-cycles")
	})
}

// BenchmarkAblationDecodeCache quantifies the decode cache (§4.1: "critical
// to lowering latencies").
func BenchmarkAblationDecodeCache(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		nm := "enabled"
		if disabled {
			nm = "disabled"
		}
		b.Run(nm, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, _ := runUnder(b, "Lorenz Attractor/", arith.Vanilla{},
					fpvm.Config{DisableDecodeCache: disabled})
				cycles = m.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationGCEpoch sweeps the garbage collection epoch (allocation
// budget between passes): frequent GC costs scan time, infrequent GC costs
// memory.
func BenchmarkAblationGCEpoch(b *testing.B) {
	for _, epoch := range []uint64{2_000, 20_000, 200_000} {
		b.Run("epoch-"+itoa(uint(epoch)), func(b *testing.B) {
			var gcCycles float64
			var live int
			for i := 0; i < b.N; i++ {
				_, vm := runUnder(b, "Three-Body/", arith.Vanilla{},
					fpvm.Config{GCEveryNAllocs: epoch})
				gcCycles = float64(vm.Stats.Cycles.GC)
				live = vm.Arena.Live()
			}
			b.ReportMetric(gcCycles, "gc-cycles")
			b.ReportMetric(float64(live), "final-live")
		})
	}
}

// BenchmarkAblationDelivery sweeps the §6 delivery models on an FP-dense
// workload, reporting the whole-program slowdown under each.
func BenchmarkAblationDelivery(b *testing.B) {
	kinds := []struct {
		name string
		k    trap.Kind
	}{
		{"user-signal", trap.DeliverUserSignal},
		{"kernel", trap.DeliverKernel},
		{"user-to-user", trap.DeliverUserToUser},
	}
	w, _ := workloads.Get("NAS MG/Class S")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	nm, err := machine.New(prog, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	if err := nm.Run(0); err != nil {
		b.Fatal(err)
	}
	for _, kind := range kinds {
		b.Run(kind.name, func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				prog2, _ := w.Build()
				m, _ := machine.New(prog2, io.Discard)
				m.Delivery, m.CorrectnessDelivery = kind.k, kind.k
				fpvm.Attach(m, fpvm.Config{System: arith.NewMPFR(200)})
				if err := m.Run(0); err != nil {
					b.Fatal(err)
				}
				slowdown = float64(m.Cycles) / float64(nm.Cycles)
			}
			b.ReportMetric(slowdown, "slowdown-x")
		})
	}
}

// BenchmarkAblationMPFRPrecisionEndToEnd sweeps the alternative arithmetic
// precision on a whole workload: the end-to-end version of Figure 11.
func BenchmarkAblationMPFRPrecisionEndToEnd(b *testing.B) {
	for _, prec := range []uint{64, 200, 1024, 4096} {
		b.Run(itoa(prec)+"bit", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runUnder(b, "Lorenz Attractor/", arith.NewMPFR(prec), fpvm.Config{})
			}
		})
	}
}

// BenchmarkPositWidths sweeps posit widths end to end.
func BenchmarkPositWidths(b *testing.B) {
	for _, cfg := range []posit.Config{posit.Posit16, posit.Posit32, posit.Posit64} {
		b.Run(cfg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runUnder(b, "Lorenz Attractor/", arith.NewPosit(cfg), fpvm.Config{})
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures the raw interpreter (no FPVM):
// simulated instructions per second on an FP-dense workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workloads.Get("NAS LU/Class S")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := machine.New(prog.Clone(), io.Discard)
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		insts = m.Stats.Instructions
	}
	b.ReportMetric(float64(insts), "sim-instructions")
}

// BenchmarkValidationVanilla times the §5.2 validation pass (also asserting
// it still holds under -bench runs).
func BenchmarkValidationVanilla(b *testing.B) {
	w, _ := workloads.Get("FBench/")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	var native bytes.Buffer
	nm, _ := machine.New(prog, &native)
	if err := nm.Run(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog2, _ := w.Build()
		var out bytes.Buffer
		m, _ := machine.New(prog2, &out)
		fpvm.Attach(m, fpvm.Config{System: arith.Vanilla{}})
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		if out.String() != native.String() {
			b.Fatal("validation broke under benchmarking")
		}
	}
}
