package main

import (
	"bytes"
	"testing"

	"fpvm/internal/arith"
	"fpvm/internal/examples"
	"fpvm/internal/machine"
)

// TestRunMatchesGoldenRegistry ties the example to the shared registry: the
// program this demo executes is the same "quickstart/harmonic" entry the
// golden-trace tests and the differential oracle cover.
func TestRunMatchesGoldenRegistry(t *testing.T) {
	reg, ok := examples.Get("quickstart/harmonic")
	if !ok {
		t.Fatal("quickstart/harmonic missing from the example registry")
	}
	prog, err := reg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var regOut bytes.Buffer
	m, err := machine.New(prog, &regOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}

	native, vm, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm != nil {
		t.Error("native run attached a VM")
	}
	if native != regOut.String() {
		t.Errorf("example output %q differs from registry program output %q",
			native, regOut.String())
	}
}

func TestVanillaBitIdentical(t *testing.T) {
	native, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, vm, err := run(arith.Vanilla{})
	if err != nil {
		t.Fatal(err)
	}
	if vanilla != native {
		t.Errorf("FPVM+Vanilla output %q differs from native %q", vanilla, native)
	}
	if vm == nil || vm.Stats.Traps == 0 {
		t.Error("vanilla run virtualized no FP instructions")
	}
}

func TestMPFRChangesResult(t *testing.T) {
	native, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	mp, vm, err := run(arith.NewMPFR(200))
	if err != nil {
		t.Fatal(err)
	}
	if mp == native {
		t.Error("200-bit MPFR printed the same digits as IEEE double")
	}
	if vm.Stats.Emulated == 0 {
		t.Error("MPFR run emulated no scalars")
	}
}
