// The quickstart example shows the whole FPVM pipeline on a ten-line
// program: assemble it, run it natively, analyze + patch it, then run the
// same binary under FPVM with 200-bit MPFR arithmetic and with posits, and
// show how the printed results change while the binary stays identical.
package main

import (
	"fmt"
	"log"
	"os"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/examples"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
	"fpvm/internal/patch"
	"fpvm/internal/posit"
)

// The program sums 1/k for k = 1..100000 — the classic harmonic series,
// whose IEEE double result carries visible rounding error. The source lives
// in the shared example registry so the differential oracle covers it.
const src = examples.Harmonic

func run(sys arith.System) (string, *fpvm.VM, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return "", nil, err
	}
	out := &capture{}
	m, err := machine.New(prog, out)
	if err != nil {
		return "", nil, err
	}
	var vm *fpvm.VM
	if sys != nil {
		// Static analysis + correctness patching, then attach FPVM —
		// exactly the paper's hybrid pipeline.
		p, err := patch.Apply(prog, nil)
		if err != nil {
			return "", nil, err
		}
		p.Install(m)
		vm = fpvm.Attach(m, fpvm.Config{System: sys})
	}
	if err := m.Run(0); err != nil {
		return "", nil, err
	}
	return out.String(), vm, nil
}

type capture struct{ buf []byte }

func (c *capture) Write(p []byte) (int, error) { c.buf = append(c.buf, p...); return len(p), nil }
func (c *capture) String() string              { return string(c.buf) }

func main() {
	native, _, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harmonic sum H(100000), same binary, four arithmetic systems:\n\n")
	fmt.Printf("  native IEEE double:   %s", native)

	vanilla, _, err := run(arith.Vanilla{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FPVM + Vanilla:       %s", vanilla)
	if vanilla == native {
		fmt.Println("                        (bit-identical: the emulator is faithful, §5.2)")
	}

	mp, vm, err := run(arith.NewMPFR(200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FPVM + MPFR 200-bit:  %s", mp)
	fmt.Printf("                        (%d traps, %d shadow values emulated)\n",
		vm.Stats.Traps, vm.Stats.Emulated)

	ps, _, err := run(arith.NewPosit(posit.Posit32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FPVM + posit<32,2>:   %s", ps)

	fmt.Println("\nThe exact value of H(100000) is 12.090146129863427947363219...")
	fmt.Println("MPFR recovers the digits IEEE loses; posit32 trades tail precision away.")
	os.Exit(0)
}
