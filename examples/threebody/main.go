// The threebody example runs the three-body workload under every
// arithmetic system FPVM supports and compares the final body positions:
// the §5.4 "effects" experiment on the second chaotic code, plus a look at
// what low-precision posits do to an N-body integration.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strconv"
	"strings"

	"fpvm/internal/arith"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
	"fpvm/internal/patch"
	"fpvm/internal/posit"
	"fpvm/internal/workloads"
)

func run(sys arith.System) ([]float64, *fpvm.VM, error) {
	w, ok := workloads.Get("Three-Body/")
	if !ok {
		return nil, nil, fmt.Errorf("workload missing")
	}
	prog, err := w.Build()
	if err != nil {
		return nil, nil, err
	}
	var out bytes.Buffer
	m, err := machine.New(prog, &out)
	if err != nil {
		return nil, nil, err
	}
	var vm *fpvm.VM
	if sys != nil {
		p, err := patch.Apply(prog, nil)
		if err != nil {
			return nil, nil, err
		}
		p.Install(m)
		vm = fpvm.Attach(m, fpvm.Config{System: sys})
	}
	if err := m.Run(0); err != nil {
		return nil, nil, err
	}
	var vals []float64
	for _, f := range strings.Fields(out.String()) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %q: %w", f, err)
		}
		vals = append(vals, v)
	}
	return vals, vm, nil
}

func main() {
	systems := []struct {
		name string
		sys  arith.System
	}{
		{"native IEEE", nil},
		{"FPVM + Vanilla", arith.Vanilla{}},
		{"FPVM + MPFR 200-bit", arith.NewMPFR(200)},
		{"FPVM + MPFR 1024-bit", arith.NewMPFR(1024)},
		{"FPVM + posit<32,2>", arith.NewPosit(posit.Posit32)},
		{"FPVM + posit<16,1>", arith.NewPosit(posit.Posit16)},
	}

	fmt.Println("Three-body problem (figure-eight-like orbit), 800 Euler steps.")
	fmt.Println("Final position of body 0 under each arithmetic system:")
	fmt.Println()

	var ieee []float64
	for _, s := range systems {
		vals, vm, err := run(s.sys)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if len(vals) < 6 {
			log.Fatalf("%s: short output", s.name)
		}
		if s.sys == nil {
			ieee = vals
		}
		note := ""
		if vm != nil {
			note = fmt.Sprintf("  [%d traps]", vm.Stats.Traps)
		}
		dist := 0.0
		if ieee != nil {
			dx, dy := vals[0]-ieee[0], vals[1]-ieee[1]
			dist = dx*dx + dy*dy
		}
		fmt.Printf("  %-22s (%+.12f, %+.12f)  Δ²=%.3g%s\n",
			s.name, vals[0], vals[1], dist, note)
	}

	fmt.Println()
	fmt.Println("Vanilla reproduces IEEE exactly; MPFR precisions agree with each other")
	fmt.Println("but drift from IEEE (the IEEE run is the one accumulating error); the")
	fmt.Println("16-bit posit orbit disintegrates — precision matters for chaotic systems.")
}
