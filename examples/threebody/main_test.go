package main

import (
	"testing"

	"fpvm/internal/arith"
	"fpvm/internal/examples"
)

// TestRegistryCoversThisExample pins that the workload this demo sweeps is
// registered as "threebody/orbit", so the golden-trace tests and the
// differential oracle execute the same program the example shows off.
func TestRegistryCoversThisExample(t *testing.T) {
	reg, ok := examples.Get("threebody/orbit")
	if !ok {
		t.Fatal("threebody/orbit missing from the example registry")
	}
	if _, err := reg.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeRunShape(t *testing.T) {
	vals, vm, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm != nil {
		t.Error("native run attached a VM")
	}
	if len(vals) < 6 {
		t.Fatalf("run printed %d values, want at least 6 (three body positions)", len(vals))
	}
}

func TestVanillaMatchesNative(t *testing.T) {
	native, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, vm, err := run(arith.Vanilla{})
	if err != nil {
		t.Fatal(err)
	}
	if vm == nil || vm.Stats.Traps == 0 {
		t.Fatal("vanilla run virtualized no FP instructions")
	}
	if len(vanilla) != len(native) {
		t.Fatalf("vanilla printed %d values, native %d", len(vanilla), len(native))
	}
	for i := range native {
		if vanilla[i] != native[i] {
			t.Errorf("value %d: vanilla %v != native %v", i, vanilla[i], native[i])
		}
	}
}

func TestLowPrecisionDiverges(t *testing.T) {
	native, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, err := run(arith.BFloat16System{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range native {
		if lo[i] != native[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("bfloat16 integration matched IEEE double exactly; precision sweep is vacuous")
	}
}
