// The errorbounds example runs unmodified binaries under FPVM with the
// interval arithmetic system: every floating point value becomes a rigorous
// enclosure of its exact counterpart, so the width of the printed intervals
// certifies how much rounding error the binary accumulates — a use of
// floating point virtualization the paper's introduction motivates (error
// analysis tools built on shadow arithmetic).
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/examples"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
)

// kahanDemo and lorenzShort live in the shared example registry
// (internal/examples) so the differential oracle and golden-trace tests
// cover exactly the programs this demo runs.
const kahanDemo = examples.Kahan

const lorenzShort = examples.LorenzShort

func runInterval(src string) ([]string, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	m, err := machine.New(prog, &out)
	if err != nil {
		return nil, err
	}
	fpvm.Attach(m, fpvm.Config{System: arith.IntervalSystem{}})
	if err := m.Run(0); err != nil {
		return nil, err
	}
	return strings.Split(strings.TrimSpace(out.String()), "\n"), nil
}

func main() {
	fmt.Println("FPVM + interval arithmetic: the binary certifies its own rounding error.")
	fmt.Println()

	lines, err := runInterval(kahanDemo)
	if err != nil {
		log.Fatal(err)
	}
	if len(lines) != 2 {
		log.Fatalf("expected 2 outputs, got %v", lines)
	}
	fmt.Println("Summing 0.1 ten thousand times (exact answer: 1000):")
	fmt.Printf("  naive summation:  %s\n", lines[0])
	fmt.Printf("  Kahan summation:  %s\n", lines[1])
	fmt.Println()
	fmt.Println("The naive sum gets a tight certified bound (the exact value provably")
	fmt.Println("lies inside). Kahan summation, famously, defeats naive interval")
	fmt.Println("arithmetic: its compensation term is anti-correlated with the sum, a")
	fmt.Println("dependency intervals cannot see, so the enclosure explodes even though")
	fmt.Println("the actual Kahan error is tiny — the classic dependency problem.")
	fmt.Println()

	lines, err = runInterval(lorenzShort)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lorenz attractor, x coordinate enclosure every 30 steps:")
	for i, l := range lines {
		fmt.Printf("  t=%0.1f  %s\n", float64((i+1)*30)*0.01, l)
	}
	fmt.Println()
	fmt.Println("Chaos inflates the enclosure exponentially: interval arithmetic proves")
	fmt.Println("(not merely suggests) that long double-precision Lorenz trajectories")
	fmt.Println("carry no certified digits — the quantitative face of Figure 13.")
}
