// The errorbounds example runs unmodified binaries under FPVM with the
// interval arithmetic system: every floating point value becomes a rigorous
// enclosure of its exact counterpart, so the width of the printed intervals
// certifies how much rounding error the binary accumulates — a use of
// floating point virtualization the paper's introduction motivates (error
// analysis tools built on shadow arithmetic).
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
)

// kahanDemo compares naive and compensated (Kahan) summation of 10000
// copies of 0.1 — a classic: same mathematical task, very different error.
const kahanDemo = `
.data
n: .i64 10000
.text
	; naive: acc += 0.1, n times
	movsd f0, =0.0
	mov r0, $0
naive:
	addsd f0, =0.1
	inc r0
	cmp r0, [n]
	jl naive
	outf f0

	; Kahan: compensated summation of the same series
	movsd f1, =0.0     ; sum
	movsd f2, =0.0     ; compensation
	mov r0, $0
kahan:
	movsd f3, =0.1
	subsd f3, f2       ; y = x - c
	movsd f4, f1
	addsd f4, f3       ; t = sum + y
	movsd f5, f4
	subsd f5, f1       ; (t - sum)
	subsd f5, f3       ; c = (t - sum) - y
	movsd f2, f5
	movsd f1, f4
	inc r0
	cmp r0, [n]
	jl kahan
	outf f1
	halt
`

// lorenzShort integrates Lorenz briefly: chaos inflates intervals fast.
const lorenzShort = `
.data
x: .f64 1.0
y: .f64 1.0
z: .f64 1.0
.text
	mov r0, $0
step:
	movsd f0, [x]
	movsd f1, [y]
	movsd f2, [z]
	movsd f3, f1
	subsd f3, f0
	mulsd f3, =10.0
	movsd f4, =28.0
	subsd f4, f2
	mulsd f4, f0
	subsd f4, f1
	movsd f5, f0
	mulsd f5, f1
	movsd f6, f2
	mulsd f6, =2.66666666666666666
	subsd f5, f6
	mulsd f3, =0.01
	addsd f0, f3
	mulsd f4, =0.01
	addsd f1, f4
	mulsd f5, =0.01
	addsd f2, f5
	movsd [x], f0
	movsd [y], f1
	movsd [z], f2
	inc r0
	cmp r0, $30
	jl step
	outf f0
	mov r1, $0
more:
	; another 30 steps, then print again (watch the width grow)
	mov r0, $0
inner:
	movsd f0, [x]
	movsd f1, [y]
	movsd f2, [z]
	movsd f3, f1
	subsd f3, f0
	mulsd f3, =10.0
	movsd f4, =28.0
	subsd f4, f2
	mulsd f4, f0
	subsd f4, f1
	movsd f5, f0
	mulsd f5, f1
	movsd f6, f2
	mulsd f6, =2.66666666666666666
	subsd f5, f6
	mulsd f3, =0.01
	addsd f0, f3
	mulsd f4, =0.01
	addsd f1, f4
	mulsd f5, =0.01
	addsd f2, f5
	movsd [x], f0
	movsd [y], f1
	movsd [z], f2
	inc r0
	cmp r0, $30
	jl inner
	outf f0
	inc r1
	cmp r1, $3
	jl more
	halt
`

func runInterval(src string) ([]string, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	m, err := machine.New(prog, &out)
	if err != nil {
		return nil, err
	}
	fpvm.Attach(m, fpvm.Config{System: arith.IntervalSystem{}})
	if err := m.Run(0); err != nil {
		return nil, err
	}
	return strings.Split(strings.TrimSpace(out.String()), "\n"), nil
}

func main() {
	fmt.Println("FPVM + interval arithmetic: the binary certifies its own rounding error.")
	fmt.Println()

	lines, err := runInterval(kahanDemo)
	if err != nil {
		log.Fatal(err)
	}
	if len(lines) != 2 {
		log.Fatalf("expected 2 outputs, got %v", lines)
	}
	fmt.Println("Summing 0.1 ten thousand times (exact answer: 1000):")
	fmt.Printf("  naive summation:  %s\n", lines[0])
	fmt.Printf("  Kahan summation:  %s\n", lines[1])
	fmt.Println()
	fmt.Println("The naive sum gets a tight certified bound (the exact value provably")
	fmt.Println("lies inside). Kahan summation, famously, defeats naive interval")
	fmt.Println("arithmetic: its compensation term is anti-correlated with the sum, a")
	fmt.Println("dependency intervals cannot see, so the enclosure explodes even though")
	fmt.Println("the actual Kahan error is tiny — the classic dependency problem.")
	fmt.Println()

	lines, err = runInterval(lorenzShort)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lorenz attractor, x coordinate enclosure every 30 steps:")
	for i, l := range lines {
		fmt.Printf("  t=%0.1f  %s\n", float64((i+1)*30)*0.01, l)
	}
	fmt.Println()
	fmt.Println("Chaos inflates the enclosure exponentially: interval arithmetic proves")
	fmt.Println("(not merely suggests) that long double-precision Lorenz trajectories")
	fmt.Println("carry no certified digits — the quantitative face of Figure 13.")
}
