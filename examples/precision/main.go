// The precision example sweeps MPFR precision and watches two quantities:
//
//  1. For the Lorenz system: how long the FPVM trajectory tracks a very
//     high precision (4096-bit) reference before chaos separates them —
//     the paper's §5.4 divergence, quantified as a function of precision.
//  2. The Figure 11 tradeoff: measured per-operation cost of this
//     repository's from-scratch MPFR at each precision, against the
//     fixed per-trap virtualization budget.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"
	"time"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/fpvm"
	"fpvm/internal/machine"
	"fpvm/internal/mpfr"
	"fpvm/internal/workloads"
)

// trajectory runs Lorenz under FPVM at the given precision and returns the
// sampled x coordinates.
func trajectory(prec uint) ([]float64, error) {
	prog, err := asm.Assemble(workloads.LorenzSource(2500, 25, 0.02))
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	m, err := machine.New(prog, &out)
	if err != nil {
		return nil, err
	}
	fpvm.Attach(m, fpvm.Config{System: arith.NewMPFR(prec)})
	if err := m.Run(0); err != nil {
		return nil, err
	}
	fields := strings.Fields(out.String())
	var xs []float64
	for i := 0; i+2 < len(fields); i += 3 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, err
		}
		xs = append(xs, v)
	}
	return xs, nil
}

func main() {
	fmt.Println("Tracking horizon of the Lorenz system vs working precision")
	fmt.Println("(reference: FPVM + MPFR 4096-bit; dt=0.02, 2500 steps)")
	fmt.Println()

	ref, err := trajectory(4096)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%12s %18s\n", "prec (bits)", "tracks until t =")
	for _, prec := range []uint{53, 64, 96, 128, 192, 256, 384, 512} {
		xs, err := trajectory(prec)
		if err != nil {
			log.Fatal(err)
		}
		horizon := len(xs)
		for i := range xs {
			if i < len(ref) && math.Abs(xs[i]-ref[i]) > 1.0 {
				horizon = i
				break
			}
		}
		fmt.Printf("%12d %17.2fs\n", prec, float64(horizon)*25*0.02)
	}
	fmt.Println()
	fmt.Println("Each extra bit of precision buys ~constant extra tracking time —")
	fmt.Println("the Lyapunov exponent converts precision into prediction horizon.")

	fmt.Println()
	fmt.Println("Per-operation cost of the from-scratch MPFR (measured on this host):")
	fmt.Printf("%12s %12s %12s %14s\n", "prec (bits)", "add (ns)", "div (ns)", "vs 12k-cycle trap")
	for _, prec := range []uint{64, 256, 1024, 4096, 16384} {
		x, y, z := mpfr.New(prec), mpfr.New(prec), mpfr.New(prec)
		x.SetUint64(2, mpfr.RoundNearestEven)
		x.Sqrt(x, mpfr.RoundNearestEven)
		y.SetUint64(3, mpfr.RoundNearestEven)
		y.Sqrt(y, mpfr.RoundNearestEven)
		iters := 200000
		if prec > 2048 {
			iters = 5000
		}
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			z.Add(x, y, mpfr.RoundNearestEven)
		}
		addNs := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			z.Div(x, y, mpfr.RoundNearestEven)
		}
		divNs := float64(time.Since(t0).Nanoseconds()) / float64(iters)
		verdict := "virtualization dominates"
		if divNs*2.1 > 12000 {
			verdict = "arithmetic dominates"
		}
		fmt.Printf("%12d %12.0f %12.0f   %s\n", prec, addNs, divNs, verdict)
	}
	fmt.Println()
	fmt.Println("This is the Figure 11 crossover: once an operation costs more than the")
	fmt.Println("~12,000-cycle trap budget, FPVM's overhead no longer matters (§5.3).")
}
