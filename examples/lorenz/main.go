// The lorenz example reproduces Figure 13: the same Lorenz-system binary
// run under IEEE doubles, FPVM+Vanilla (identical), and FPVM+MPFR
// (divergent), with an ASCII rendering of the x-coordinate trajectories.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"fpvm/internal/experiments"
)

func main() {
	res, err := experiments.Fig13Data(experiments.Options{W: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Lorenz attractor, x(t): '·' IEEE, 'o' FPVM+MPFR, '#' both (Figure 13)")
	fmt.Println()

	// ASCII plot: time on the vertical axis, x in [-25, 25] horizontally.
	const width = 72
	col := func(x float64) int {
		c := int((x + 25) / 50 * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	step := len(res.IEEE) / 40
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.IEEE); i += step {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		ci, cm := col(res.IEEE[i][0]), col(res.MPFR[i][0])
		row[ci] = '.'
		if cm == ci {
			row[cm] = '#'
		} else {
			row[cm] = 'o'
		}
		fmt.Printf("t=%5.2f |%s|\n", float64(i)*25*0.02, row)
	}

	last := len(res.IEEE) - 1
	fmt.Println()
	fmt.Printf("final IEEE state:        (%+.6f, %+.6f, %+.6f)\n",
		res.IEEE[last][0], res.IEEE[last][1], res.IEEE[last][2])
	fmt.Printf("final FPVM-Vanilla:      (%+.6f, %+.6f, %+.6f)  identical: %v\n",
		res.Vanilla[last][0], res.Vanilla[last][1], res.Vanilla[last][2],
		res.IEEE[last] == res.Vanilla[last])
	fmt.Printf("final FPVM-MPFR(200):    (%+.6f, %+.6f, %+.6f)\n",
		res.MPFR[last][0], res.MPFR[last][1], res.MPFR[last][2])
	if res.DivergenceStep >= 0 {
		fmt.Printf("\ntrajectories separate beyond 1.0 at t = %.2f: every rounding event\n",
			float64(res.DivergenceStep)*25*0.02)
		fmt.Println("is a perturbation, and the chaotic dynamics amplify it exponentially (§5.4).")
	}
	d := math.Hypot(math.Hypot(res.IEEE[last][0]-res.MPFR[last][0],
		res.IEEE[last][1]-res.MPFR[last][1]), res.IEEE[last][2]-res.MPFR[last][2])
	fmt.Printf("final-state distance: %.3f\n", d)
}
