package main

import (
	"os"
	"path/filepath"
	"testing"

	"fpvm/internal/asm"
)

func TestImageRoundTrip(t *testing.T) {
	prog := asm.MustAssemble(`
	.data
	x: .f64 1.5
	.text
	.entry main
	main:
		movsd f0, [x]
		addsd f0, f0
		outf f0
		halt
	`)
	path := filepath.Join(t.TempDir(), "prog.fpvm")
	if err := WriteImage(path, prog); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Code) != string(prog.Code) {
		t.Error("code differs")
	}
	if string(got.Data) != string(prog.Data) {
		t.Error("data differs")
	}
	if got.Entry != prog.Entry || got.DataBase != prog.DataBase {
		t.Error("metadata differs")
	}
	if got.Symbols["main"] != prog.Symbols["main"] || got.Symbols["x"] != prog.Symbols["x"] {
		t.Error("symbols differ")
	}
	// The reloaded image must disassemble identically.
	a, _ := prog.Disassemble()
	b, err := got.Disassemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("instruction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("inst %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadImageErrors(t *testing.T) {
	dir := t.TempDir()
	// Truncated file.
	short := filepath.Join(dir, "short")
	os.WriteFile(short, []byte{1, 2}, 0o644)
	if _, err := ReadImage(short); err == nil {
		t.Error("truncated image should fail")
	}
	// Bad magic.
	bad := filepath.Join(dir, "bad")
	hdr := `{"magic":"NOPE","entry":0,"dataBase":0,"codeLen":0,"dataLen":0}`
	buf := []byte{byte(len(hdr)), 0, 0, 0}
	buf = append(buf, hdr...)
	os.WriteFile(bad, buf, 0o644)
	if _, err := ReadImage(bad); err == nil {
		t.Error("bad magic should fail")
	}
	// Missing file.
	if _, err := ReadImage(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file should fail")
	}
	// Size mismatch.
	mis := filepath.Join(dir, "mis")
	hdr2 := `{"magic":"FPVM1","entry":0,"dataBase":0,"codeLen":10,"dataLen":0}`
	buf2 := []byte{byte(len(hdr2)), 0, 0, 0}
	buf2 = append(buf2, hdr2...)
	buf2 = append(buf2, 1, 2, 3) // only 3 bytes, header claims 10
	os.WriteFile(mis, buf2, 0o644)
	if _, err := ReadImage(mis); err == nil {
		t.Error("size mismatch should fail")
	}
}
