// fpvm-asm assembles a text assembly source into an encoded program image
// and can disassemble one back for inspection.
//
// Usage:
//
//	fpvm-asm -o prog.fpvm prog.s
//	fpvm-asm -d prog.fpvm
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fpvm/internal/asm"
	"fpvm/internal/isa"
)

// imageHeader is the serialized program container (a stand-in for ELF).
type imageHeader struct {
	Magic    string            `json:"magic"`
	Entry    uint64            `json:"entry"`
	DataBase uint64            `json:"dataBase"`
	CodeLen  int               `json:"codeLen"`
	DataLen  int               `json:"dataLen"`
	Symbols  map[string]uint64 `json:"symbols,omitempty"`
}

const magic = "FPVM1"

// WriteImage serializes a program: JSON header, newline, code, data.
func WriteImage(path string, p *isa.Program) error {
	hdr, err := json.Marshal(imageHeader{
		Magic: magic, Entry: p.Entry, DataBase: p.DataBase,
		CodeLen: len(p.Code), DataLen: len(p.Data), Symbols: p.Symbols,
	})
	if err != nil {
		return err
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = append(buf, p.Code...)
	buf = append(buf, p.Data...)
	return os.WriteFile(path, buf, 0o644)
}

// ReadImage deserializes a program image.
func ReadImage(path string) (*isa.Program, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("truncated image")
	}
	hl := binary.LittleEndian.Uint32(raw)
	raw = raw[4:]
	if uint32(len(raw)) < hl {
		return nil, fmt.Errorf("truncated header")
	}
	var hdr imageHeader
	if err := json.Unmarshal(raw[:hl], &hdr); err != nil {
		return nil, err
	}
	if hdr.Magic != magic {
		return nil, fmt.Errorf("bad magic %q", hdr.Magic)
	}
	raw = raw[hl:]
	if len(raw) != hdr.CodeLen+hdr.DataLen {
		return nil, fmt.Errorf("image size mismatch")
	}
	return &isa.Program{
		Code:     raw[:hdr.CodeLen],
		Data:     raw[hdr.CodeLen:],
		DataBase: hdr.DataBase,
		Entry:    hdr.Entry,
		Symbols:  hdr.Symbols,
	}, nil
}

func main() {
	var (
		out = flag.String("o", "a.fpvm", "output image path")
		dis = flag.String("d", "", "disassemble an image instead of assembling")
	)
	flag.Parse()

	if *dis != "" {
		p, err := ReadImage(*dis)
		if err != nil {
			fatal(err)
		}
		insts, err := p.Disassemble()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; entry %#x, %d bytes code, %d bytes data at %#x\n",
			p.Entry, len(p.Code), len(p.Data), p.DataBase)
		for _, in := range insts {
			fmt.Printf("%#06x\t%v\n", in.Addr, in)
		}
		return
	}

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: fpvm-asm [-o out.fpvm] prog.s | fpvm-asm -d image"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if err := WriteImage(*out, p); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d bytes code, %d bytes data\n", *out, len(p.Code), len(p.Data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpvm-asm:", err)
	os.Exit(1)
}
