package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosLoadEndToEnd runs the full chaos-under-load campaign through the
// CLI entry point: a real server with fault injection armed, concurrent
// healthy and hostile tenant streams, every resilience invariant, and a
// clean drain — the same stage `make chaosload-smoke` runs in CI.
func TestChaosLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-load campaign skipped in -short mode (run `make chaosload-smoke`)")
	}
	var out, errb bytes.Buffer
	if code := Run([]string{"-chaosload"}, &out, &errb); code != 0 {
		t.Fatalf("chaosload exited %d:\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "chaosload: PASS") {
		t.Errorf("no PASS verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "clean drain on shutdown") {
		t.Errorf("no clean-drain confirmation:\n%s", out.String())
	}
}
