package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testServer returns an httptest server over a service with a small memory
// geometry so the suite stays fast under -race.
func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.MemSize == 0 {
		cfg.MemSize = 256 << 10
	}
	s := newServer(cfg)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (int, runResponse, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("bad 200 body %q: %v", raw, err)
		}
	}
	return resp.StatusCode, rr, string(raw)
}

func TestServeRunAndSessionReuse(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 2})
	code, rr, raw := postRun(t, ts, `{"workload":"FBench"}`, nil)
	if code != http.StatusOK {
		t.Fatalf("first run: %d %s", code, raw)
	}
	if rr.Output == "" || rr.Cycles == 0 || rr.Instructions == 0 {
		t.Fatalf("empty harvest: %+v", rr)
	}
	if rr.FPTraps == 0 {
		t.Errorf("FBench under virtualization should trap: %+v", rr)
	}
	if rr.Tenant != "anonymous" {
		t.Errorf("default tenant = %q, want anonymous", rr.Tenant)
	}

	// A later request for the same workload must hit the program cache and
	// land on a pooled session whose run counter has advanced. sync.Pool may
	// legitimately serve a fresh session on any single checkout (per-P caches,
	// GC reclamation), so retry a few times — reuse must show up quickly, not
	// on one exact request.
	var rr2 runResponse
	var code2 int
	for i := 0; i < 5; i++ {
		code2, rr2, raw = postRun(t, ts, `{"workload":"FBench"}`, nil)
		if code2 != http.StatusOK {
			t.Fatalf("repeat run: %d %s", code2, raw)
		}
		if rr2.SessionRuns >= 2 {
			break
		}
	}
	if rr2.SessionRuns < 2 {
		t.Errorf("no request landed on a reused session (runs=%d); pool not reusing", rr2.SessionRuns)
	}
	if rr2.Output != rr.Output || rr2.Cycles != rr.Cycles || rr2.FPTraps != rr.FPTraps {
		t.Errorf("reused session diverged: %+v vs %+v", rr2, rr)
	}
}

func TestServeInlineAsm(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	body := `{"asm":"movsd f0, =1.5\naddsd f0, =2.25\noutf f0\nhalt\n"}`
	code, rr, raw := postRun(t, ts, body, nil)
	if code != http.StatusOK {
		t.Fatalf("asm run: %d %s", code, raw)
	}
	if !strings.Contains(rr.Output, "3.75") {
		t.Errorf("asm output = %q, want 3.75", rr.Output)
	}
}

func TestServeQuotaDegradesNeverKills(t *testing.T) {
	s, ts := testServer(t, serverConfig{TenantQuota: 1000})
	// Ask for far more than the tenant quota: the grant is clamped, the run
	// truncates, and the response is still a 200 with a full harvest.
	code, rr, raw := postRun(t, ts, `{"workload":"FBench","max_inst":999999999}`, map[string]string{"X-FPVM-Tenant": "greedy"})
	if code != http.StatusOK {
		t.Fatalf("over-quota ask must degrade, not fail: %d %s", code, raw)
	}
	if rr.BudgetGranted != 1000 {
		t.Errorf("granted %d, want clamp to 1000", rr.BudgetGranted)
	}
	if !rr.BudgetExhausted || rr.Fault != "" {
		t.Errorf("truncation not reported as degradation: %+v", rr)
	}
	if rr.Instructions != 1000 {
		t.Errorf("retired %d instructions, want exactly the granted 1000", rr.Instructions)
	}
	if rr.Tenant != "greedy" {
		t.Errorf("header tenant lost: %+v", rr)
	}
	if got := s.degraded.Load(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// A request under quota is granted its ask verbatim.
	code, rr, raw = postRun(t, ts, `{"workload":"FBench","max_inst":500}`, nil)
	if code != http.StatusOK {
		t.Fatalf("under-quota run: %d %s", code, raw)
	}
	if rr.BudgetGranted != 500 || !rr.BudgetExhausted {
		t.Errorf("under-quota ask mishandled: %+v", rr)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	cases := []struct {
		name, body string
	}{
		{"no program", `{}`},
		{"both workload and asm", `{"workload":"FBench","asm":"halt"}`},
		{"unknown workload", `{"workload":"NoSuchThing"}`},
		{"unknown arith", `{"workload":"FBench","arith":"octuple"}`},
		{"bad asm", `{"asm":"frobnicate f0"}`},
		{"bad json", `{"workload":`},
	}
	for _, tc := range cases {
		code, _, raw := postRun(t, ts, tc.body, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got %d %s, want 400", tc.name, code, raw)
		}
		if !strings.Contains(raw, "error") {
			t.Errorf("%s: error body %q missing error field", tc.name, raw)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run = %d, want 405", resp.StatusCode)
	}
}

func TestServeHealthzAndStats(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 3})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["ok"] != true || health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	postRun(t, ts, `{"workload":"FBench"}`, map[string]string{"X-FPVM-Tenant": "alice"})
	postRun(t, ts, `{"workload":"FBench"}`, map[string]string{"X-FPVM-Tenant": "alice"})
	postRun(t, ts, `{"workload":"FBench","max_inst":100}`, map[string]string{"X-FPVM-Tenant": "bob"})

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests != 3 || stats.Errors != 0 || stats.Workers != 3 {
		t.Errorf("service counters wrong: %+v", stats)
	}
	if stats.InFlight != 0 {
		t.Errorf("in_flight = %d after all runs drained", stats.InFlight)
	}
	alice, bob := stats.Tenants["alice"], stats.Tenants["bob"]
	if alice.Requests != 2 || alice.Instructions == 0 || alice.BudgetHits != 0 {
		t.Errorf("alice accounting wrong: %+v", alice)
	}
	if bob.Requests != 1 || bob.Instructions != 100 || bob.BudgetHits != 1 {
		t.Errorf("bob accounting wrong: %+v", bob)
	}
	if stats.Pool.Gets != 3 || stats.Pool.Puts != 3 {
		t.Errorf("pool traffic wrong: %+v", stats.Pool)
	}
}

func TestServeTraceAndTopSites(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	code, rr, raw := postRun(t, ts, `{"workload":"FBench","trace":true,"topsites":3}`, nil)
	if code != http.StatusOK {
		t.Fatalf("traced run: %d %s", code, raw)
	}
	if len(rr.TopSites) == 0 {
		t.Error("topsites requested but absent")
	}
	if rr.TraceJSONL == "" || !json.Valid([]byte(strings.SplitN(rr.TraceJSONL, "\n", 2)[0])) {
		t.Errorf("trace_jsonl not valid JSONL: %.80q", rr.TraceJSONL)
	}
}

// TestServeConcurrentTenants hammers the handler from many goroutines — under
// -race this is the service-level isolation proof: shared program cache,
// shared pool, per-tenant accounting, all racing.
func TestServeConcurrentTenants(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 4})
	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	var want runResponse
	{
		code, rr, raw := postRun(t, ts, `{"workload":"FBench"}`, nil)
		if code != http.StatusOK {
			t.Fatalf("warmup: %d %s", code, raw)
		}
		want = rr
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for i := 0; i < perClient; i++ {
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/run",
					bytes.NewReader([]byte(`{"workload":"FBench"}`)))
				req.Header.Set("X-FPVM-Tenant", tenant)
				resp, err := ts.Client().Do(req)
				if err != nil {
					errs <- err.Error()
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("%d %s", resp.StatusCode, raw)
					continue
				}
				var rr runResponse
				if err := json.Unmarshal(raw, &rr); err != nil {
					errs <- err.Error()
					continue
				}
				if rr.Output != want.Output || rr.Cycles != want.Cycles || rr.FPTraps != want.FPTraps {
					errs <- fmt.Sprintf("tenant %s saw divergent result: %+v vs %+v", tenant, rr, want)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := s.requests.Load(); got != clients*perClient+1 {
		t.Errorf("request counter = %d, want %d", got, clients*perClient+1)
	}
}

func TestServeSelftestAndSmokeExitClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-selftest", "-sessions", "20", "-j", "4", "-mem-kib", "256"}, &out, &errOut); code != 0 {
		t.Fatalf("-selftest exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "sessions/sec") {
		t.Errorf("selftest report missing throughput: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := Run([]string{"-smoke", "-sessions", "10", "-j", "4", "-mem-kib", "256"}, &out, &errOut); code != 0 {
		t.Fatalf("-smoke exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "10/10 requests returned 200, clean shutdown") {
		t.Errorf("smoke summary wrong: %q", out.String())
	}
}

func TestServeBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := Run([]string{"-selftest", "-workload", "NoSuchTarget"}, &out, &errOut); code != 1 {
		t.Fatalf("bad selftest target exit %d, want 1", code)
	}
}

// TestServeSharedWarmCache pins the serve-layer warm-cache contract: the
// first JIT-armed request for a workload compiles and publishes; later
// requests — other tenants included — adopt the shared traces (zero
// sb_compiled), outputs stay identical, and GET /stats exposes both the
// aggregate superblock counters and the shared-cache hit rate.
func TestServeSharedWarmCache(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 2})
	body := `{"workload":"FBench","jitthreshold":2,"stitchdepth":4}`

	code, cold, raw := postRun(t, ts, body, map[string]string{"X-FPVM-Tenant": "alice"})
	if code != http.StatusOK {
		t.Fatalf("cold run: %d %s", code, raw)
	}
	if cold.SBCompiled == 0 || cold.SBStitched == 0 {
		t.Fatalf("cold run never engaged jit+stitch: %+v", cold)
	}

	code, warm, raw := postRun(t, ts, body, map[string]string{"X-FPVM-Tenant": "bob"})
	if code != http.StatusOK {
		t.Fatalf("warm run: %d %s", code, raw)
	}
	if warm.SBCompiled != 0 {
		t.Fatalf("warm run compiled %d superblocks, want 0 (adopted)", warm.SBCompiled)
	}
	if warm.Output != cold.Output {
		t.Fatalf("warm output diverged from cold run")
	}
	// Hit counts are not comparable to the cold run: adoption publishes the
	// first-compiled (longest) traces, which cross sibling entries, so a warm
	// run serves fewer but larger superblock hits. The contract is zero
	// compiles, nonzero service, identical output.
	if warm.SBHits == 0 {
		t.Fatal("warm run served no superblock entries")
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.SBCompiled != cold.SBCompiled || stats.SBHits == 0 || stats.SBStitched == 0 {
		t.Errorf("service superblock counters wrong: %+v", stats)
	}
	if stats.SharedSB == nil {
		t.Fatal("shared_sb missing from /stats")
	}
	if stats.SharedSB.Stores == 0 || stats.SharedSB.Adopted == 0 || stats.SharedSB.HitRate <= 0 {
		t.Errorf("shared cache stats wrong: %+v", *stats.SharedSB)
	}
	alice, bob := stats.Tenants["alice"], stats.Tenants["bob"]
	if alice.SBCompiled == 0 || alice.SBStitched == 0 {
		t.Errorf("alice superblock accounting wrong: %+v", alice)
	}
	if bob.SBCompiled != 0 || bob.SBHits == 0 {
		t.Errorf("bob superblock accounting wrong: %+v", bob)
	}
}

// TestServeNoSharedSB pins the opt-out: with the cache disabled every
// JIT-armed request compiles privately and /stats omits shared_sb.
func TestServeNoSharedSB(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 2, NoSharedSB: true})
	body := `{"workload":"FBench","jitthreshold":2}`
	for i := 0; i < 2; i++ {
		code, rr, raw := postRun(t, ts, body, nil)
		if code != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, code, raw)
		}
		if rr.SBCompiled == 0 {
			t.Fatalf("run %d compiled nothing — sharing happened with the cache disabled", i)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.SharedSB != nil {
		t.Errorf("shared_sb present with the cache disabled: %+v", *stats.SharedSB)
	}
}
