// fpvm-serve is the multi-tenant FPVM execution service: a long-running
// HTTP/JSON server that runs guest programs under alternative arithmetic on
// a pool of reusable sessions. It is the paper's §7 "FPVM as an operating
// system service" direction made concrete — many tenants, one process,
// bounded concurrency, quotas that degrade instead of kill.
//
// Usage:
//
//	fpvm-serve -addr :8080 -workers 16 -max-inst 50000000
//	fpvm-serve -selftest -sessions 500 -j 16
//
// Endpoints:
//
//	POST /run      run a guest program; see the runRequest JSON shape
//	GET  /healthz  liveness probe
//	GET  /stats    service, pool, and per-tenant counters
//
// Example:
//
//	curl -s localhost:8080/run -d '{"workload":"FBench","arith":"mpfr","trace":false}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpvm/internal/arith"
	"fpvm/internal/chaosload"
	"fpvm/internal/fpvm"
	"fpvm/internal/loadgen"
	"fpvm/internal/oracle"
	"fpvm/internal/session"
)

func main() { os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr)) }

// Run is the testable entry point, mirroring the other fpvm commands.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpvm-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers   = fs.Int("workers", 8, "max concurrently executing sessions (excess requests queue)")
		maxInst   = fs.Uint64("max-inst", 50_000_000, "per-request instruction quota ceiling")
		quota     = fs.Uint64("tenant-quota", 0, "per-tenant instruction quota (0 = same as -max-inst)")
		memKiB    = fs.Int("mem-kib", 1024, "per-session guest memory in KiB")
		arenaSoft = fs.Int("arena-soft", 0, "arena soft cap: forced GC above this many live shadows (0 = off)")
		arenaHard = fs.Int("arena-hard", 0, "arena hard cap: degrade to native above this many live shadows (0 = off)")
		storm     = fs.Uint64("storm", 0, "default trap-storm governor threshold (0 = off)")
		maxRun    = fs.Duration("max-run-time", 0, "per-run wall-clock cap; expired runs are truncated and harvested with deadline_exceeded (0 = off)")
		maxQueue  = fs.Int("max-queue", 0, "max requests waiting for a worker slot before shedding with 429 (0 = 4x workers)")
		queueTO   = fs.Duration("queue-timeout", 0, "max wait for a worker slot before shedding with 429 (0 = 5s)")
		brFaults  = fs.Int("breaker-faults", 0, "per-tenant faults (poisons, deadline-cap blowouts) within -breaker-window that open the circuit breaker (0 = 5)")
		brWindow  = fs.Duration("breaker-window", 0, "circuit-breaker sliding window (0 = 30s)")
		brCool    = fs.Duration("breaker-cooldown", 0, "how long an open breaker fast-fails a tenant with 503 (0 = 10s)")
		allowF    = fs.Bool("allow-faults", false, "honor the request-level fault-injection spec (chaos harness only)")
		noShared  = fs.Bool("no-shared-sb", false, "disable the server-wide warm superblock cache (per-request JIT compiles stay private)")
		jit       = fs.Int("jit", 0, "trace-JIT threshold for -selftest sessions (0 = off)")
		stitchD   = fs.Int("stitchdepth", 0, "superblock stitch depth for -selftest sessions (requires -jit)")
		selftest  = fs.Bool("selftest", false, "run the in-process load harness instead of serving")
		smoke     = fs.Bool("smoke", false, "smoke test: start the server on an ephemeral port, fire -sessions concurrent HTTP requests, assert all 200s and a clean shutdown")
		chaosLd   = fs.Bool("chaosload", false, "chaos-under-load test: serve on an ephemeral port with fault injection armed, drive healthy and hostile tenant streams concurrently, and enforce the resilience invariants")
		sessions  = fs.Int("sessions", 500, "total session runs for -selftest (-smoke defaults to 50)")
		jobs      = fs.Int("j", 16, "concurrent workers for -selftest/-smoke")
		target    = fs.String("workload", "FBench", "target for -selftest (oracle spelling)")
		arithName = fs.String("arith", "vanilla", "arithmetic system for -selftest")
		prec      = fs.Uint("prec", 200, "MPFR precision for -selftest")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-serve:", err)
		return 1
	}

	cfg := serverConfig{
		Workers:         *workers,
		MaxInst:         *maxInst,
		TenantQuota:     *quota,
		MemSize:         *memKiB << 10,
		ArenaSoftCap:    *arenaSoft,
		ArenaHardCap:    *arenaHard,
		Storm:           *storm,
		MaxRunTime:      *maxRun,
		MaxQueue:        *maxQueue,
		QueueTimeout:    *queueTO,
		BreakerFaults:   *brFaults,
		BreakerWindow:   *brWindow,
		BreakerCooldown: *brCool,
		AllowFaults:     *allowF,
		NoSharedSB:      *noShared,
	}

	if *selftest {
		return runSelftest(stdout, stderr, cfg, *target, *arithName, *prec, *sessions, *jobs, *jit, *stitchD)
	}
	if *smoke {
		n := *sessions
		if !seen(fs, "sessions") {
			n = 50
		}
		return runSmoke(stdout, stderr, cfg, *target, *arithName, n, *jobs)
	}
	if *chaosLd {
		return runChaosLoad(stdout, stderr)
	}

	srv := newServer(cfg)
	httpSrv := &http.Server{Handler: srv.handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "fpvm-serve: listening on %s (%d workers, %d KiB/session)\n",
		ln.Addr(), cfg.withDefaults().Workers, *memKiB)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return fail(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Fprintln(stderr, "fpvm-serve: clean shutdown")
	}
	return 0
}

// seen reports whether a flag was explicitly set.
func seen(fs *flag.FlagSet, name string) bool {
	found := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

// runSmoke is the serve-smoke CI stage: a real server on an ephemeral port,
// n concurrent POST /run requests through the HTTP load harness, then a
// drained shutdown. Any non-200, transport error, or shutdown failure is
// fatal.
func runSmoke(stdout, stderr io.Writer, cfg serverConfig, target, arithName string, n, jobs int) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-serve:", err)
		return 1
	}
	srv := newServer(cfg)
	httpSrv := &http.Server{Handler: srv.handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	body := fmt.Sprintf(`{"workload":%q,"arith":%q,"tenant":"smoke"}`, target, arithName)
	rep := loadgen.RunHTTP(nil, "http://"+ln.Addr().String()+"/run", []byte(body),
		loadgen.Options{Sessions: n, Workers: jobs})
	rep.Write(stdout)

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fail(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	if rep.Errors > 0 {
		return fail(fmt.Errorf("%d of %d requests were not 200s", rep.Errors, rep.Sessions))
	}
	fmt.Fprintf(stdout, "serve-smoke: %d/%d requests returned 200, clean shutdown\n", rep.Sessions, rep.Sessions)
	return 0
}

// runChaosLoad is the chaos-under-load CI stage: a real server on an
// ephemeral port, armed for hostility (fault injection allowed, a tight
// wall-clock cap, a fast breaker), driven by the chaosload harness's
// concurrent healthy and hostile tenant streams. The harness checks the
// client-observable invariants; this driver adds the last one — a clean
// drain on shutdown after the storm.
func runChaosLoad(stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-serve:", err)
		return 1
	}
	const chaosWorkers = 4
	// The wall-clock cap must separate the hostile guests (unbounded spins
	// only the cap can stop) from the healthy ones on whatever hardware the
	// campaign lands on: a loaded CI runner or the race detector slows every
	// run by an order of magnitude, and a healthy tenant blowing the cap is
	// charged as a breaker fault — exactly the false positive the campaign
	// forbids. So the cap is calibrated, not fixed: one solo run of the
	// slowest healthy workload, scaled by the worker count (all workers can
	// contend for one core) with 5x margin on top, floored at 500ms for
	// idle hardware.
	solo, err := timeHealthyRun()
	if err != nil {
		return fail(fmt.Errorf("calibrate wall-clock cap: %w", err))
	}
	runCap := 5 * chaosWorkers * solo
	if runCap < 500*time.Millisecond {
		runCap = 500 * time.Millisecond
	}
	fmt.Fprintf(stderr, "chaosload: wall-clock cap %s (solo Lorenz %s)\n", runCap, solo)
	cfg := serverConfig{
		Workers: chaosWorkers,
		// The spin guests must hit the wall-clock cap, never the instruction
		// budget — the campaign is about deadlines, not quotas.
		MaxInst:         1 << 40,
		MemSize:         256 << 10,
		MaxRunTime:      runCap,
		BreakerFaults:   3,
		BreakerWindow:   time.Minute,
		BreakerCooldown: time.Minute,
		AllowFaults:     true,
	}
	srv := newServer(cfg)
	httpSrv := &http.Server{Handler: srv.handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	rep := chaosload.Run(chaosload.Options{
		URL: "http://" + ln.Addr().String(),
		Log: stderr,
	})

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fail(fmt.Errorf("drain after chaos campaign: %w", err))
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	rep.WriteReport(stdout)
	if !rep.Ok() {
		return 1
	}
	fmt.Fprintln(stdout, "chaosload: clean drain on shutdown")
	return 0
}

// timeHealthyRun measures one solo vanilla run of the chaos campaign's
// slowest healthy workload (Lorenz, ~25ms on idle hardware) — the yardstick
// runChaosLoad scales its wall-clock cap from.
func timeHealthyRun() (time.Duration, error) {
	t, err := oracle.Lookup("workload:Lorenz Attractor")
	if err != nil {
		return 0, err
	}
	prog, err := t.Build()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := session.New().Run(prog, session.Config{
		System:  arith.Vanilla{},
		MaxInst: 1 << 40,
		MemSize: 256 << 10,
	}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// runSelftest drives the in-process load harness: N session runs of one
// target through a shared pool, reporting sessions/sec and tail latency —
// the same numbers the bench trajectory records.
func runSelftest(stdout, stderr io.Writer, cfg serverConfig, target, arithName string, prec uint, sessions, jobs, jit, stitchDepth int) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-serve:", err)
		return 1
	}
	cfg = cfg.withDefaults()
	t, err := oracle.Lookup(target)
	if err != nil {
		return fail(err)
	}
	prog, err := t.Build()
	if err != nil {
		return fail(err)
	}
	sys, err := arith.Select(arithName, prec)
	if err != nil {
		return fail(err)
	}
	scfg := session.Config{
		System:         sys,
		MaxInst:        cfg.TenantQuota,
		MemSize:        cfg.MemSize,
		StormThreshold: cfg.Storm,
		JITThreshold:   jit,
		StitchDepth:    stitchDepth,
		ArenaSoftCap:   cfg.ArenaSoftCap,
		ArenaHardCap:   cfg.ArenaHardCap,
	}
	if jit > 0 && !cfg.NoSharedSB {
		scfg.SBCache = fpvm.NewSBCache()
	}
	var pool session.Pool
	rep := loadgen.Run(&pool, prog, scfg, loadgen.Options{Sessions: sessions, Workers: jobs})
	rep.Write(stdout)
	if rep.Errors > 0 {
		return fail(fmt.Errorf("%d of %d sessions failed", rep.Errors, rep.Sessions))
	}
	return 0
}
