package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/faultinject"
	"fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/oracle"
	"fpvm/internal/sanitize"
	"fpvm/internal/session"
	"fpvm/internal/telemetry"
)

// serverConfig is the operator-controlled envelope every request runs
// inside. Request parameters can only narrow it, never widen it: an over-ask
// is clamped and the run degrades (truncates, demotes, goes native) rather
// than being rejected or killed.
type serverConfig struct {
	// Workers bounds the number of simultaneously executing sessions; excess
	// requests queue on the semaphore (or abandon it when the client goes
	// away). This is also the ceiling on live guest memory: Workers × MemSize.
	Workers int
	// MaxInst is the per-request instruction quota ceiling.
	MaxInst uint64
	// TenantQuota is the per-tenant instruction quota ceiling, defaulting to
	// MaxInst. A tenant whose requests ask for more is granted exactly this
	// much and the run reports budget_exhausted instead of failing.
	TenantQuota uint64
	// MemSize is the per-session guest memory size in bytes.
	MemSize int
	// ArenaSoftCap and ArenaHardCap bound each session's shadow arena; the
	// hard cap trips the degradation engine (native re-execution), never an
	// error.
	ArenaSoftCap int
	ArenaHardCap int
	// Storm is the default trap-storm governor threshold.
	Storm uint64
	// MaxRunTime caps each run's wall-clock execution (0 = no cap). The cap
	// is enforced cooperatively: the machine checks a cancel flag at
	// instruction-boundary checkpoints, so an expired run is truncated and
	// harvested exactly like a budget exhaustion — HTTP 200 with
	// deadline_exceeded, never a kill. A request's timeout_ms can only
	// narrow this, never widen it.
	MaxRunTime time.Duration
	// MaxQueue bounds the number of requests waiting for a worker slot.
	// Above it, new requests are shed immediately with 429 + Retry-After
	// instead of piling onto the semaphore (0 = 4×Workers).
	MaxQueue int
	// QueueTimeout bounds how long an admitted request waits for a slot
	// before being shed with 429 (0 = 5s).
	QueueTimeout time.Duration
	// BreakerFaults is the per-tenant circuit-breaker threshold: this many
	// faults (contained panics, server-cap deadline blowouts) inside
	// BreakerWindow open the tenant's breaker, fast-failing its requests
	// with 503 for BreakerCooldown without touching other tenants.
	// 0 = 5 faults over 30s with a 10s cooldown.
	BreakerFaults   int
	BreakerWindow   time.Duration
	BreakerCooldown time.Duration
	// AllowFaults honors the request-level "faults" injection spec — the
	// chaos-load harness's hook. Off by default: injection is an operator
	// decision, never a tenant's.
	AllowFaults bool
	// NoSharedSB disables the server-wide warm superblock cache. By default
	// every request that arms the trace-JIT tier on a cached (bundled)
	// workload shares compiled traces with every other tenant running the
	// same program: the traces are a pure function of the immutable program
	// text, so only the first session per workload pays the warm-up and
	// compile. Per-tenant state (blacklists, storm patches, invalidations)
	// stays private regardless.
	NoSharedSB bool
}

func (c serverConfig) withDefaults() serverConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxInst == 0 {
		c.MaxInst = session.DefaultMaxInst
	}
	if c.TenantQuota == 0 || c.TenantQuota > c.MaxInst {
		c.TenantQuota = c.MaxInst
	}
	if c.MemSize <= 0 {
		c.MemSize = 1 << 20 // 1 MiB: every bundled target fits comfortably
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.Workers
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.BreakerFaults <= 0 {
		c.BreakerFaults = 5
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 30 * time.Second
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// breaker is a per-tenant sliding-window circuit breaker. Faults (contained
// panics, server-cap deadline blowouts) are recorded with timestamps; when
// the window holds the configured threshold the breaker opens and the
// tenant's requests fast-fail with 503 until the cooldown elapses — without
// a session checkout, so a hostile tenant stops costing workers.
type breaker struct {
	mu        sync.Mutex
	faults    []time.Time
	openUntil time.Time
	trips     uint64
}

// allow reports whether the tenant may proceed; when the breaker is open it
// returns the remaining cooldown for Retry-After.
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return false, b.openUntil.Sub(now)
	}
	return true, 0
}

// record notes one fault and opens the breaker if the sliding window filled.
func (b *breaker) record(now time.Time, threshold int, window, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	keep := b.faults[:0]
	for _, t := range b.faults {
		if now.Sub(t) < window {
			keep = append(keep, t)
		}
	}
	b.faults = append(keep, now)
	if len(b.faults) >= threshold {
		b.openUntil = now.Add(cooldown)
		b.trips++
		b.faults = b.faults[:0]
	}
}

// snapshot reads the breaker for /stats.
func (b *breaker) snapshot(now time.Time) (open bool, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.openUntil), b.trips
}

// tenantState is the accounting row behind per-tenant quota decisions.
type tenantState struct {
	requests     atomic.Uint64
	instructions atomic.Uint64
	budgetHits   atomic.Uint64 // runs truncated by the quota
	deadlineHits atomic.Uint64 // runs truncated by a wall-clock deadline
	poisons      atomic.Uint64 // runs that poisoned their session (contained panic)
	rejected     atomic.Uint64 // requests fast-failed by the open breaker
	sbCompiled   atomic.Uint64 // superblocks this tenant's runs compiled
	sbHits       atomic.Uint64 // superblock entries this tenant's runs served
	sbStitched   atomic.Uint64 // entries served through stitch links
	sanitizeRuns atomic.Uint64 // runs with the sanitizer armed
	certifyRuns  atomic.Uint64 // runs with interval certification armed

	breaker breaker
}

// server is the multi-tenant execution service: a session pool, a bounded
// worker semaphore, a program cache, and per-tenant accounting.
type server struct {
	cfg   serverConfig
	pool  session.Pool
	sem   chan struct{} // bounded worker pool: one token per running session
	progs sync.Map      // target name → *isa.Program (shared immutable images)

	// sbcache is the server-wide warm superblock cache (nil when disabled);
	// attached only to runs of pooled bundled programs, whose *isa.Program
	// pointers are stable across requests.
	sbcache *fpvm.SBCache

	mu      sync.Mutex
	tenants map[string]*tenantState

	requests   atomic.Uint64
	errors     atomic.Uint64
	degraded   atomic.Uint64 // runs that hit a quota or degradation path
	sbCompiled atomic.Uint64
	sbHits     atomic.Uint64
	sbStitched atomic.Uint64

	// Overload and resilience accounting.
	queued       atomic.Int64  // requests currently waiting for a worker slot
	shed         atomic.Uint64 // requests refused with 429 (queue full or wait timed out)
	breakerFails atomic.Uint64 // requests fast-failed 503 by an open breaker
	breakerTrips atomic.Uint64 // breaker open events across all tenants
	deadlineHits atomic.Uint64 // runs truncated by a wall-clock deadline
	poisons      atomic.Uint64 // contained run panics (sessions quarantined)

	sanitizeRuns    atomic.Uint64 // runs with the sanitizer armed
	sanitizeFlagged atomic.Uint64 // sanitized runs that flagged at least one site
	certifyRuns     atomic.Uint64 // runs with certification armed
	certifyFailed   atomic.Uint64 // certification runs whose verdict was FAIL
}

func newServer(cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		tenants: make(map[string]*tenantState),
	}
	if !cfg.NoSharedSB {
		s.sbcache = fpvm.NewSBCache()
	}
	return s
}

// handler returns the service's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// runRequest is the POST /run body: which program, which arithmetic system,
// and how much observability. All resource asks are clamped to the server
// envelope.
type runRequest struct {
	// Workload names a bundled target (oracle.Lookup spelling, with or
	// without the workload:/example: prefix). Mutually exclusive with Asm.
	Workload string `json:"workload,omitempty"`
	// Asm is assembly source to assemble and run.
	Asm string `json:"asm,omitempty"`
	// Arith selects the arithmetic system (default vanilla).
	Arith string `json:"arith,omitempty"`
	// Prec is the MPFR precision in bits (default 200).
	Prec uint `json:"prec,omitempty"`
	// MaxInst asks for an instruction budget; it is clamped to the tenant
	// quota.
	MaxInst uint64 `json:"max_inst,omitempty"`
	// NoPatch skips static analysis and correctness patching.
	NoPatch bool `json:"no_patch,omitempty"`
	// SeqLen enables sequence emulation with the given max run length.
	SeqLen int `json:"seqlen,omitempty"`
	// Storm overrides the server's trap-storm threshold (0 = server default).
	Storm uint64 `json:"storm,omitempty"`
	// JITThreshold enables the trace-JIT superblock tier: sites delivered
	// more than this many times compile into cached superblocks (0 = off).
	JITThreshold int `json:"jitthreshold,omitempty"`
	// StitchDepth chains up to this many successor superblocks per dispatch
	// at retirement (requires jitthreshold > 0; 0 = off).
	StitchDepth int `json:"stitchdepth,omitempty"`
	// Trace returns the telemetry event stream as JSONL in the response.
	Trace bool `json:"trace,omitempty"`
	// TopSites returns the N hottest trap sites.
	TopSites int `json:"topsites,omitempty"`
	// Sanitize arms the numerical sanitizer for this run; the response then
	// carries the ranked cancellation/error report. Architectural results are
	// bit-identical with or without it.
	Sanitize bool `json:"sanitize,omitempty"`
	// SanitizeThreshold is the lost-bits flagging threshold (0 = default).
	SanitizeThreshold float64 `json:"sanitize_threshold,omitempty"`
	// Certify additionally records an interval enclosure per guest output and
	// reports whether every native output is proved contained (implies
	// Sanitize).
	Certify bool `json:"certify,omitempty"`
	// TimeoutMS asks for a wall-clock deadline in milliseconds. It is capped
	// by the server's -max-run-time; an expired run is truncated at an
	// instruction boundary and harvested (HTTP 200, deadline_exceeded:true),
	// never killed.
	TimeoutMS uint64 `json:"timeout_ms,omitempty"`
	// Faults is a faultinject spec (fpvm-run -faults syntax) armed on this
	// run. Honored only when the server runs with -allow-faults — the
	// chaos-load harness's hook; ordinary deployments reject it.
	Faults string `json:"faults,omitempty"`
	// Tenant is the accounting identity (default "anonymous"); the
	// X-FPVM-Tenant header takes precedence.
	Tenant string `json:"tenant,omitempty"`
}

// runResponse is the harvested result of one session run.
type runResponse struct {
	Output           string               `json:"output"`
	Cycles           uint64               `json:"cycles"`
	Instructions     uint64               `json:"instructions"`
	FPTraps          uint64               `json:"fp_traps"`
	CorrectnessTraps uint64               `json:"correctness_traps"`
	Emulated         uint64               `json:"emulated"`
	Degradations     uint64               `json:"degradations"`
	StormPatches     uint64               `json:"storm_patches"`
	SBCompiled       uint64               `json:"sb_compiled,omitempty"`
	SBHits           uint64               `json:"sb_hits,omitempty"`
	SBStitched       uint64               `json:"sb_stitched,omitempty"`
	SBInvalidations  uint64               `json:"sb_invalidations,omitempty"`
	BudgetGranted    uint64               `json:"budget_granted"`
	BudgetExhausted  bool                 `json:"budget_exhausted"`
	DeadlineExceeded bool                 `json:"deadline_exceeded,omitempty"`
	Fault            string               `json:"fault,omitempty"`
	SessionRuns      uint64               `json:"session_runs"`
	Tenant           string               `json:"tenant"`
	TopSites         []telemetry.SiteRank `json:"top_sites,omitempty"`
	TraceJSONL       string               `json:"trace_jsonl,omitempty"`
	Sanitize         *sanitizeSummary     `json:"sanitize,omitempty"`
}

// sanitizeSummary is the JSON-safe projection of a sanitize.Report: lost-bits
// figures are always finite (clamped to [0, 53]) but enclosure widths can be
// Inf or NaN, which encoding/json rejects — so widths travel as %g strings.
type sanitizeSummary struct {
	Primary       string          `json:"primary"`
	Prec          uint            `json:"prec"`
	ThresholdBits float64         `json:"threshold_bits"`
	Samples       uint64          `json:"samples"`
	Sites         int             `json:"sites"`
	FlaggedSites  int             `json:"flagged_sites"`
	Truncated     bool            `json:"truncated,omitempty"`
	TopSites      []sanitizeSite  `json:"top_sites,omitempty"`
	Certify       *certifySummary `json:"certify,omitempty"`
}

type sanitizeSite struct {
	PC            string  `json:"pc"`
	Op            string  `json:"op"`
	Samples       uint64  `json:"samples"`
	MaxLostBits   float64 `json:"max_lost_bits"`
	MeanLostBits  float64 `json:"mean_lost_bits"`
	Cancellations uint64  `json:"cancellations,omitempty"`
	MaxCancelBits int     `json:"max_cancel_bits,omitempty"`
	Depth         int     `json:"depth,omitempty"`
	MaxWidth      string  `json:"max_width,omitempty"`
	Flagged       bool    `json:"flagged,omitempty"`
}

type certifySummary struct {
	Pass          bool   `json:"pass"`
	Outputs       int    `json:"outputs"`
	Proved        int    `json:"proved"`
	Indeterminate int    `json:"indeterminate"`
	Violated      int    `json:"violated"`
	Dropped       uint64 `json:"dropped,omitempty"`
	MaxWidth      string `json:"max_width,omitempty"`
}

// maxSanitizeSites caps the per-response site ranking; the full report stays
// available to CLI users via fpvm-run -sanitize.
const maxSanitizeSites = 16

func summarizeSanitize(r *sanitize.Report) *sanitizeSummary {
	sum := &sanitizeSummary{
		Primary:       r.Primary,
		Prec:          r.Prec,
		ThresholdBits: r.ThresholdBits,
		Samples:       r.Samples,
		Sites:         len(r.Sites),
		FlaggedSites:  r.FlaggedSites,
		Truncated:     r.Truncated,
	}
	for i, s := range r.Sites {
		if i >= maxSanitizeSites {
			break
		}
		site := sanitizeSite{
			PC:            fmt.Sprintf("%#x", s.PC),
			Op:            s.Op,
			Samples:       s.Samples,
			MaxLostBits:   s.MaxLostBits,
			MeanLostBits:  s.MeanLostBits,
			Cancellations: s.Cancellations,
			MaxCancelBits: s.MaxCancelBits,
			Depth:         s.Depth,
			Flagged:       s.Flagged,
		}
		if s.MaxWidth != 0 {
			site.MaxWidth = fmt.Sprintf("%g", s.MaxWidth)
		}
		sum.TopSites = append(sum.TopSites, site)
	}
	if c := r.Certification; c != nil {
		cs := &certifySummary{
			Pass:          c.Pass(),
			Outputs:       len(c.Outputs),
			Proved:        c.Proved,
			Indeterminate: c.Indeterminate,
			Violated:      c.Violated,
			Dropped:       c.Dropped,
		}
		if c.MaxWidth != 0 {
			cs.MaxWidth = fmt.Sprintf("%g", c.MaxWidth)
		}
		sum.Certify = cs
	}
	return sum
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	tenant := r.Header.Get("X-FPVM-Tenant")
	if tenant == "" {
		tenant = req.Tenant
	}
	if tenant == "" {
		tenant = "anonymous"
	}

	prog, pooled, err := s.program(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Arith == "" {
		req.Arith = "vanilla"
	}
	prec := req.Prec
	if prec == 0 {
		prec = 200
	}
	sys, err := arith.Select(req.Arith, prec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Circuit breaker: a tenant whose recent runs keep poisoning sessions or
	// blowing the server deadline cap fast-fails here — no queue slot, no
	// session checkout — until its cooldown elapses. Other tenants are
	// untouched.
	ts := s.tenant(tenant)
	if ok, wait := ts.breaker.allow(time.Now()); !ok {
		ts.rejected.Add(1)
		s.breakerFails.Add(1)
		w.Header().Set("Retry-After", retryAfter(wait))
		httpError(w, http.StatusServiceUnavailable,
			"tenant %q circuit breaker open (repeated faults); retry after %s", tenant, wait.Round(time.Millisecond))
		return
	}

	// Quota: grant min(ask, tenant quota). The clamp is the degrade path —
	// the run executes under the granted budget and reports truncation
	// instead of being refused.
	granted := req.MaxInst
	if granted == 0 || granted > s.cfg.TenantQuota {
		granted = s.cfg.TenantQuota
	}
	storm := req.Storm
	if storm == 0 {
		storm = s.cfg.Storm
	}
	cfg := session.Config{
		System:         sys,
		MaxInst:        granted,
		MemSize:        s.cfg.MemSize,
		NoPatch:        req.NoPatch,
		MaxSequenceLen: req.SeqLen,
		StormThreshold: storm,
		JITThreshold:   req.JITThreshold,
		StitchDepth:    req.StitchDepth,
		ArenaSoftCap:   s.cfg.ArenaSoftCap,
		ArenaHardCap:   s.cfg.ArenaHardCap,
		Telemetry:      req.Trace,
		TopSites:       req.TopSites,
	}
	if req.Sanitize || req.Certify {
		cfg.Sanitize = true
		cfg.SanitizeThreshold = req.SanitizeThreshold
		cfg.Certify = req.Certify
	}
	// Only pooled bundled programs share the warm cache: ad-hoc asm bodies
	// have a fresh *isa.Program per request, so caching them would only grow
	// the cache without ever hitting.
	if pooled {
		cfg.SBCache = s.sbcache
	}

	// Fault injection is an operator decision: the request-level spec is the
	// chaos-load harness's hook and is rejected unless the server opted in.
	if req.Faults != "" {
		if !s.cfg.AllowFaults {
			httpError(w, http.StatusForbidden, "fault injection disabled (server not started with -allow-faults)")
			return
		}
		icfg, err := faultinject.ParseSpec(req.Faults)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		cfg.Inject = faultinject.New(icfg)
	}

	// Deadline lattice: the effective wall-clock cap is min(timeout_ms,
	// -max-run-time); capApplied records whether the server's cap (not the
	// client's narrower ask) is the binding constraint, because only a
	// server-cap blowout is a tenant fault the breaker counts.
	runTimeout := s.cfg.MaxRunTime
	capApplied := runTimeout > 0
	if req.TimeoutMS > 0 {
		asked := time.Duration(req.TimeoutMS) * time.Millisecond
		if runTimeout == 0 || asked < runTimeout {
			runTimeout = asked
			capApplied = false
		}
	}

	// Admission control: a bounded wait-queue in front of the worker
	// semaphore. Above -max-queue (or after -queue-timeout in line) the
	// request is shed with 429 + Retry-After; shedding is cheaper than
	// stalling every tenant behind an unbounded line.
	if int(s.queued.Load()) >= s.cfg.MaxQueue {
		s.shed.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.cfg.QueueTimeout))
		httpError(w, http.StatusTooManyRequests, "queue full (%d waiting); retry later", s.cfg.MaxQueue)
		return
	}
	s.queued.Add(1)
	qt := time.NewTimer(s.cfg.QueueTimeout)
	select {
	case s.sem <- struct{}{}:
		qt.Stop()
		s.queued.Add(-1)
	case <-qt.C:
		s.queued.Add(-1)
		s.shed.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.cfg.QueueTimeout))
		httpError(w, http.StatusTooManyRequests, "no worker slot within %s; retry later", s.cfg.QueueTimeout)
		return
	case <-r.Context().Done():
		qt.Stop()
		s.queued.Add(-1)
		httpError(w, http.StatusServiceUnavailable, "canceled while queued")
		return
	}

	// Cooperative preemption: one cancel flag serves both the wall-clock cap
	// and the request context, so an abandoned request stops burning its
	// worker at the next checkpoint just like an expired one.
	var cancel atomic.Bool
	stopCtx := context.AfterFunc(r.Context(), func() { cancel.Store(true) })
	defer stopCtx()
	if runTimeout > 0 {
		timer := time.AfterFunc(runTimeout, func() { cancel.Store(true) })
		defer timer.Stop()
	}
	cfg.Cancel = &cancel

	start := time.Now()
	sess := s.pool.Get()
	res, err := sess.Run(prog, cfg)
	runs := sess.Runs()
	s.pool.Put(sess)
	<-s.sem

	s.requests.Add(1)
	ts.requests.Add(1)
	if err != nil {
		s.errors.Add(1)
		var pe *session.PoisonedError
		if errors.As(err, &pe) {
			// The panic was contained and the session quarantined; the
			// request is the tenant's breaker fault, the process is fine.
			s.poisons.Add(1)
			ts.poisons.Add(1)
			s.recordBreakerFault(ts)
			httpError(w, http.StatusInternalServerError,
				"run poisoned its session (contained panic: %s); session quarantined", pe.PanicValue)
			return
		}
		httpError(w, http.StatusBadRequest, "run: %v", err)
		return
	}
	ts.instructions.Add(res.Instructions)
	if res.BudgetExhausted {
		ts.budgetHits.Add(1)
	}
	if res.DeadlineExceeded {
		s.deadlineHits.Add(1)
		ts.deadlineHits.Add(1)
		// Blowing the operator's cap (not the client's narrower ask, not a
		// dropped connection) is a tenant fault: enough open the breaker.
		if capApplied && time.Since(start) >= runTimeout {
			s.recordBreakerFault(ts)
		}
	}
	ts.sbCompiled.Add(res.Machine.SBCompiled)
	ts.sbHits.Add(res.Machine.SBHits)
	ts.sbStitched.Add(res.Machine.SBStitched)
	s.sbCompiled.Add(res.Machine.SBCompiled)
	s.sbHits.Add(res.Machine.SBHits)
	s.sbStitched.Add(res.Machine.SBStitched)
	if res.BudgetExhausted || res.DeadlineExceeded || res.VM.Degradations > 0 || res.VM.StormPatches > 0 {
		s.degraded.Add(1)
	}
	var sanSummary *sanitizeSummary
	if res.Sanitize != nil {
		sanSummary = summarizeSanitize(res.Sanitize)
		s.sanitizeRuns.Add(1)
		ts.sanitizeRuns.Add(1)
		if sanSummary.FlaggedSites > 0 {
			s.sanitizeFlagged.Add(1)
		}
		if c := sanSummary.Certify; c != nil {
			s.certifyRuns.Add(1)
			ts.certifyRuns.Add(1)
			if !c.Pass {
				s.certifyFailed.Add(1)
			}
		}
	}

	resp := runResponse{
		Output:           res.Output,
		Cycles:           res.Cycles,
		Instructions:     res.Instructions,
		FPTraps:          res.VM.Traps,
		CorrectnessTraps: res.VM.CorrectTraps,
		Emulated:         res.VM.Emulated,
		Degradations:     res.VM.Degradations,
		StormPatches:     res.VM.StormPatches,
		SBCompiled:       res.Machine.SBCompiled,
		SBHits:           res.Machine.SBHits,
		SBStitched:       res.Machine.SBStitched,
		SBInvalidations:  res.Machine.SBInvalidations,
		BudgetGranted:    granted,
		BudgetExhausted:  res.BudgetExhausted,
		DeadlineExceeded: res.DeadlineExceeded,
		Fault:            res.Fault,
		SessionRuns:      runs,
		Tenant:           tenant,
		TopSites:         res.TopSites,
		TraceJSONL:       string(res.TraceJSONL),
		Sanitize:         sanSummary,
	}
	writeJSON(w, http.StatusOK, resp)
}

// program resolves the request's program, caching bundled targets by name so
// every request for the same target shares one immutable *isa.Program — that
// pointer identity is what lets a warm session skip the predecode pass (and
// what keys the shared superblock cache). pooled reports whether the program
// came from that cache.
func (s *server) program(req runRequest) (prog *isa.Program, pooled bool, err error) {
	switch {
	case req.Workload != "" && req.Asm != "":
		return nil, false, fmt.Errorf("workload and asm are mutually exclusive")
	case req.Workload != "":
		if p, ok := s.progs.Load(req.Workload); ok {
			return p.(*isa.Program), true, nil
		}
		t, err := oracle.Lookup(req.Workload)
		if err != nil {
			return nil, false, err
		}
		prog, err := t.Build()
		if err != nil {
			return nil, false, err
		}
		actual, _ := s.progs.LoadOrStore(req.Workload, prog)
		return actual.(*isa.Program), true, nil
	case req.Asm != "":
		prog, err = asm.Assemble(req.Asm)
		return prog, false, err
	default:
		return nil, false, fmt.Errorf("one of workload or asm is required")
	}
}

// recordBreakerFault charges one fault to the tenant's breaker and rolls the
// trip count up into the service counter when this fault opened it.
func (s *server) recordBreakerFault(ts *tenantState) {
	now := time.Now()
	_, before := ts.breaker.snapshot(now)
	ts.breaker.record(now, s.cfg.BreakerFaults, s.cfg.BreakerWindow, s.cfg.BreakerCooldown)
	if _, after := ts.breaker.snapshot(now); after > before {
		s.breakerTrips.Add(1)
	}
}

// retryAfter renders a duration as a Retry-After header value: whole
// seconds, at least 1.
func retryAfter(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *server) tenant(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{}
		s.tenants[name] = ts
	}
	return ts
}

// queueHighWater is the /healthz overload threshold: three quarters of the
// admission queue. Above it the probe still answers 200 (the process is
// healthy) but reports "overloaded" so load balancers can steer away before
// the queue starts shedding.
func (s *server) queueHighWater() int64 {
	hw := int64(s.cfg.MaxQueue) * 3 / 4
	if hw < 1 {
		hw = 1
	}
	return hw
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.queued.Load() >= s.queueHighWater() {
		status = "overloaded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"status": status,
		"queued": s.queued.Load(),
	})
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Degraded uint64 `json:"degraded"`
	Workers  int    `json:"workers"`
	InFlight int    `json:"in_flight"`
	// Overload and resilience counters: current queue depth, requests shed
	// with 429, breaker fast-fails (503) and open events, deadline-truncated
	// runs, and contained run panics (each of which quarantined a session —
	// the pool block carries the matching quarantined/replaced figures).
	Queued       int64  `json:"queued"`
	MaxQueue     int    `json:"max_queue"`
	Shed         uint64 `json:"shed"`
	BreakerFails uint64 `json:"breaker_fails"`
	BreakerTrips uint64 `json:"breaker_trips"`
	DeadlineHits uint64 `json:"deadline_hits"`
	Poisons      uint64 `json:"poisons"`
	// Service-wide superblock counters aggregated over every completed run.
	SBCompiled uint64 `json:"sb_compiled"`
	SBHits     uint64 `json:"sb_hits"`
	SBStitched uint64 `json:"sb_stitched"`
	// Sanitizer counters: how many runs armed the sanitizer / certification
	// and how many of those flagged sites or failed their verdict.
	SanitizeRuns    uint64 `json:"sanitize_runs"`
	SanitizeFlagged uint64 `json:"sanitize_flagged"`
	CertifyRuns     uint64 `json:"certify_runs"`
	CertifyFailed   uint64 `json:"certify_failed"`
	// SharedSB describes the warm superblock cache (omitted when disabled).
	SharedSB *sharedSBStats         `json:"shared_sb,omitempty"`
	Pool     session.PoolStats      `json:"pool"`
	Tenants  map[string]tenantStats `json:"tenants"`
}

// sharedSBStats is the /stats view of the warm superblock cache.
type sharedSBStats struct {
	Programs int    `json:"programs"`
	Entries  int    `json:"entries"`
	Lookups  uint64 `json:"lookups"`
	Hits     uint64 `json:"hits"`
	Stores   uint64 `json:"stores"`
	Adopted  uint64 `json:"adopted"`
	// HitRate is Hits/Lookups — the fraction of JIT-armed attaches that found
	// at least one published trace to adopt.
	HitRate float64 `json:"hit_rate"`
}

type tenantStats struct {
	Requests     uint64 `json:"requests"`
	Instructions uint64 `json:"instructions"`
	BudgetHits   uint64 `json:"budget_hits"`
	DeadlineHits uint64 `json:"deadline_hits,omitempty"`
	Poisons      uint64 `json:"poisons,omitempty"`
	Rejected     uint64 `json:"rejected,omitempty"`
	BreakerOpen  bool   `json:"breaker_open,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	SBCompiled   uint64 `json:"sb_compiled"`
	SBHits       uint64 `json:"sb_hits"`
	SBStitched   uint64 `json:"sb_stitched"`
	SanitizeRuns uint64 `json:"sanitize_runs,omitempty"`
	CertifyRuns  uint64 `json:"certify_runs,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Degraded:        s.degraded.Load(),
		Workers:         s.cfg.Workers,
		InFlight:        len(s.sem),
		Queued:          s.queued.Load(),
		MaxQueue:        s.cfg.MaxQueue,
		Shed:            s.shed.Load(),
		BreakerFails:    s.breakerFails.Load(),
		BreakerTrips:    s.breakerTrips.Load(),
		DeadlineHits:    s.deadlineHits.Load(),
		Poisons:         s.poisons.Load(),
		SBCompiled:      s.sbCompiled.Load(),
		SBHits:          s.sbHits.Load(),
		SBStitched:      s.sbStitched.Load(),
		SanitizeRuns:    s.sanitizeRuns.Load(),
		SanitizeFlagged: s.sanitizeFlagged.Load(),
		CertifyRuns:     s.certifyRuns.Load(),
		CertifyFailed:   s.certifyFailed.Load(),
		Pool:            s.pool.Stats(),
		Tenants:         make(map[string]tenantStats),
	}
	if s.sbcache != nil {
		cs := s.sbcache.Stats()
		sb := &sharedSBStats{
			Programs: cs.Programs,
			Entries:  cs.Entries,
			Lookups:  cs.Lookups,
			Hits:     cs.Hits,
			Stores:   cs.Stores,
			Adopted:  cs.Adopted,
		}
		if cs.Lookups > 0 {
			sb.HitRate = float64(cs.Hits) / float64(cs.Lookups)
		}
		resp.SharedSB = sb
	}
	now := time.Now()
	s.mu.Lock()
	for name, ts := range s.tenants {
		open, trips := ts.breaker.snapshot(now)
		resp.Tenants[name] = tenantStats{
			Requests:     ts.requests.Load(),
			Instructions: ts.instructions.Load(),
			BudgetHits:   ts.budgetHits.Load(),
			DeadlineHits: ts.deadlineHits.Load(),
			Poisons:      ts.poisons.Load(),
			Rejected:     ts.rejected.Load(),
			BreakerOpen:  open,
			BreakerTrips: trips,
			SBCompiled:   ts.sbCompiled.Load(),
			SBHits:       ts.sbHits.Load(),
			SBStitched:   ts.sbStitched.Load(),
			SanitizeRuns: ts.sanitizeRuns.Load(),
			CertifyRuns:  ts.certifyRuns.Load(),
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
