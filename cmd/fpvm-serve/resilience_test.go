package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// spinBody is a guest that never halts: only a deadline can stop it. The
// server configs in this file raise MaxInst high enough that the instruction
// budget never fires first.
const spinBody = `{"asm":"\tmov r0, $0\nloop:\n\tinc r0\n\tjmp loop","timeout_ms":%d,"tenant":%q}`

// bigQuota keeps the budget out of the deadline tests' way.
const bigQuota = 1 << 40

func TestServeDeadlineTruncatesAndHarvests(t *testing.T) {
	_, ts := testServer(t, serverConfig{Workers: 2, MaxInst: bigQuota})
	code, rr, raw := postRun(t, ts, fmt.Sprintf(spinBody, 30, "dl"), nil)
	if code != http.StatusOK {
		t.Fatalf("deadline run: %d %s", code, raw)
	}
	if !rr.DeadlineExceeded {
		t.Fatalf("deadline_exceeded not set: %s", raw)
	}
	if rr.BudgetExhausted || rr.Fault != "" {
		t.Errorf("deadline truncation misclassified: %+v", rr)
	}
	if rr.Instructions == 0 || rr.Cycles == 0 {
		t.Errorf("deadline run harvested nothing: %+v", rr)
	}
}

func TestServeMaxRunTimeCapsClientAsk(t *testing.T) {
	// The client asks for 10 minutes; the operator cap is 30ms. The cap wins
	// and the run still returns 200 with its partial harvest.
	_, ts := testServer(t, serverConfig{Workers: 2, MaxInst: bigQuota, MaxRunTime: 30 * time.Millisecond})
	start := time.Now()
	code, rr, raw := postRun(t, ts, fmt.Sprintf(spinBody, 600_000, "cap"), nil)
	if code != http.StatusOK {
		t.Fatalf("capped run: %d %s", code, raw)
	}
	if !rr.DeadlineExceeded {
		t.Fatalf("server cap did not truncate the run: %s", raw)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("capped run took %s; the 30ms cap is not binding", elapsed)
	}
}

func TestServeFaultSpecRequiresOptIn(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	code, _, raw := postRun(t, ts, `{"workload":"FBench","faults":"run-panic=1"}`, nil)
	if code != http.StatusForbidden {
		t.Fatalf("faults without -allow-faults = %d %s, want 403", code, raw)
	}
}

func TestServePoisonContainedAndQuarantined(t *testing.T) {
	s, ts := testServer(t, serverConfig{AllowFaults: true})
	code, _, raw := postRun(t, ts, `{"workload":"FBench","faults":"run-panic=1","tenant":"evil"}`, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("poisoned run = %d %s, want 500", code, raw)
	}
	if !strings.Contains(raw, "quarantined") {
		t.Errorf("poison response does not mention quarantine: %s", raw)
	}

	// The process survived and the pool healed: a clean run works.
	code, rr, raw := postRun(t, ts, `{"workload":"FBench","tenant":"good"}`, nil)
	if code != http.StatusOK || rr.Fault != "" {
		t.Fatalf("clean run after poison: %d %s", code, raw)
	}

	ps := s.pool.Stats()
	if ps.Poisoned != 1 || ps.Quarantined != 1 {
		t.Errorf("pool ledger after poison: %+v, want poisoned=1 quarantined=1", ps)
	}
	if s.poisons.Load() != 1 {
		t.Errorf("server poison counter = %d, want 1", s.poisons.Load())
	}
}

func TestServeBreakerIsolatesHostileTenant(t *testing.T) {
	s, ts := testServer(t, serverConfig{
		AllowFaults:     true,
		BreakerFaults:   2,
		BreakerWindow:   time.Minute,
		BreakerCooldown: time.Minute,
	})
	poison := `{"workload":"FBench","faults":"run-panic=1","tenant":"evil"}`
	for i := 0; i < 2; i++ {
		if code, _, raw := postRun(t, ts, poison, nil); code != http.StatusInternalServerError {
			t.Fatalf("poison %d = %d %s, want 500", i, code, raw)
		}
	}

	// Two faults inside the window: the breaker is open, and even a clean
	// request from the hostile tenant fast-fails with 503 + Retry-After.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"workload":"FBench","tenant":"evil"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Other tenants are untouched by evil's breaker.
	if code, _, raw := postRun(t, ts, `{"workload":"FBench","tenant":"good"}`, nil); code != http.StatusOK {
		t.Fatalf("innocent tenant caught in breaker: %d %s", code, raw)
	}

	if trips := s.breakerTrips.Load(); trips != 1 {
		t.Errorf("breaker trips = %d, want 1", trips)
	}
	if fails := s.breakerFails.Load(); fails != 1 {
		t.Errorf("breaker fast-fails = %d, want 1", fails)
	}
}

func TestServeQueueShedsWith429(t *testing.T) {
	s, ts := testServer(t, serverConfig{
		Workers:      1,
		MaxQueue:     1,
		QueueTimeout: 30 * time.Millisecond,
		MaxInst:      bigQuota,
	})
	// One slow run holds the single worker; a burst behind it must drain as
	// at most (worker + queue slot) successes and the rest 429s.
	const burst = 6
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := postRun(t, ts, fmt.Sprintf(spinBody, 300, "burst"), nil)
			codes[i] = code
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("burst request returned %d; want 200 or 429", c)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed (ok=%d); admission control not engaging", ok)
	}
	if ok == 0 {
		t.Fatal("every request shed; the worker never served")
	}
	if got := s.shed.Load(); got != uint64(shed) {
		t.Errorf("shed counter = %d, want %d", got, shed)
	}

	// Shed responses carry Retry-After: hold the worker with a long run,
	// then watch a second request time out of the queue.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postRun(t, ts, fmt.Sprintf(spinBody, 300, "burst"), nil)
	}()
	time.Sleep(50 * time.Millisecond)
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json",
		strings.NewReader(fmt.Sprintf(spinBody, 300, "burst")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-done
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued-out request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestServeHealthzOverloaded(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 2, MaxQueue: 8})
	get := func() map[string]any {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d, want 200 even under overload", resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := get(); m["status"] != "ok" {
		t.Fatalf("idle healthz = %v", m)
	}
	// Simulate a deep queue; the probe must stay 200 but report overloaded.
	s.queued.Store(s.queueHighWater())
	defer s.queued.Store(0)
	if m := get(); m["status"] != "overloaded" {
		t.Fatalf("high-water healthz = %v, want overloaded", m)
	}
}

// TestServeAbandonedRequestFreesWorker pins the context satellite: a client
// that disconnects mid-run cancels the guest at the next preemption
// checkpoint, so the worker slot comes back without any server-side timeout
// configured.
func TestServeAbandonedRequestFreesWorker(t *testing.T) {
	s, ts := testServer(t, serverConfig{Workers: 1, MaxInst: bigQuota})
	body := `{"asm":"\tmov r0, $0\nloop:\n\tinc r0\n\tjmp loop","tenant":"gone"}`
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := ts.Client().Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("expected the abandoned request to fail client-side")
	}

	// The guest is unbounded and no server cap is set: only the context
	// cancellation can free the worker.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.sem) == 0 && s.deadlineHits.Load() >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker not freed after client disconnect: in_flight=%d deadline_hits=%d",
		len(s.sem), s.deadlineHits.Load())
}

// TestServeBreakerIgnoresClientAskedTimeouts pins the breaker's fault
// definition: a truncation under the client's own narrower timeout_ms is
// service working as intended, not a tenant fault — it must not open the
// breaker no matter how often it happens.
func TestServeBreakerIgnoresClientAskedTimeouts(t *testing.T) {
	s, ts := testServer(t, serverConfig{
		Workers:       2,
		MaxInst:       bigQuota,
		MaxRunTime:    10 * time.Second, // far above any ask below
		BreakerFaults: 2,
	})
	for i := 0; i < 4; i++ {
		code, rr, raw := postRun(t, ts, fmt.Sprintf(spinBody, 20, "asker"), nil)
		if code != http.StatusOK || !rr.DeadlineExceeded {
			t.Fatalf("asked-timeout run %d: %d %s", i, code, raw)
		}
	}
	if trips := s.breakerTrips.Load(); trips != 0 {
		t.Fatalf("client-asked timeouts tripped the breaker %d times", trips)
	}
	if code, _, raw := postRun(t, ts, `{"workload":"FBench","tenant":"asker"}`, nil); code != http.StatusOK {
		t.Fatalf("tenant wrongly broken: %d %s", code, raw)
	}
}
