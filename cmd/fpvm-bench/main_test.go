package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBenchList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"fig9", "fig12", "validation"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		code int
	}{
		{"unknown experiment", []string{"-exp", "fig99"}, 1},
		{"bad flag", []string{"-no-such-flag"}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tt.args...)
			if code != tt.code {
				t.Errorf("args %v exited %d, want %d", tt.args, code, tt.code)
			}
			if stderr == "" {
				t.Errorf("args %v failed silently", tt.args)
			}
		})
	}
}

func TestBenchExperimentTable(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "fig14", "-quick")
	if code != 0 {
		t.Fatalf("-exp fig14 exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "trap") {
		t.Errorf("fig14 table missing expected content:\n%s", out)
	}
	if !strings.Contains(stderr, "completed in") {
		t.Errorf("timing line missing from stderr:\n%s", stderr)
	}
}

// TestBenchJSONTopSites golden-checks the shape of the machine-readable
// records: each row carries the run's counters, and with -topsites the
// embedded per-PC site ranking whose trap counts must be consistent with the
// row's aggregate trap counters.
func TestBenchJSONTopSites(t *testing.T) {
	code, out, stderr := runCLI(t, "-json", "-quick", "-topsites", "2")
	if code != 0 {
		t.Fatalf("-json exited %d: %s", code, stderr)
	}
	var doc struct {
		Schema  int              `json:"schema"`
		Options map[string]any   `json:"options"`
		Rows    []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not a bench document: %v", err)
	}
	if doc.Schema != 1 {
		t.Fatalf("bench document schema = %d, want 1", doc.Schema)
	}
	if doc.Options == nil {
		t.Fatal("bench document has no options record")
	}
	rows := doc.Rows
	if len(rows) == 0 {
		t.Fatal("-json produced no records")
	}
	for _, row := range rows {
		for _, k := range []string{"workload", "system", "native_cycles",
			"virt_cycles", "slowdown", "fp_traps", "top_sites"} {
			if _, ok := row[k]; !ok {
				t.Fatalf("record missing field %q: %v", k, row)
			}
		}
		sites, ok := row["top_sites"].([]any)
		if !ok {
			t.Fatalf("top_sites is %T, want array", row["top_sites"])
		}
		if len(sites) == 0 || len(sites) > 2 {
			t.Fatalf("top_sites has %d entries, want 1..2", len(sites))
		}
		fpTraps := row["fp_traps"].(float64)
		var siteTraps float64
		for _, s := range sites {
			site := s.(map[string]any)
			for _, k := range []string{"pc", "op", "traps", "cycles"} {
				if _, ok := site[k]; !ok {
					t.Fatalf("site entry missing field %q: %v", k, site)
				}
			}
			siteTraps += site["traps"].(float64)
		}
		if siteTraps > fpTraps {
			t.Errorf("%s: top-2 sites claim %v traps, row has only %v",
				row["workload"], siteTraps, fpTraps)
		}
	}
}

// TestBenchJSONOmitsSitesByDefault pins that telemetry stays detached (and
// the field absent) when -topsites is not given.
func TestBenchJSONOmitsSitesByDefault(t *testing.T) {
	code, out, stderr := runCLI(t, "-json", "-quick")
	if code != 0 {
		t.Fatalf("-json exited %d: %s", code, stderr)
	}
	if strings.Contains(out, "top_sites") {
		t.Error("-json without -topsites still embeds top_sites records")
	}
}
