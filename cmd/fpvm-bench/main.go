// fpvm-bench regenerates the tables and figures of the FPVM paper's
// evaluation (§5). Each experiment prints a plain-text table shaped like
// the corresponding figure.
//
// Usage:
//
//	fpvm-bench                 # run every experiment
//	fpvm-bench -exp fig12      # one experiment
//	fpvm-bench -exp fig9 -prec 512 -quick
//	fpvm-bench -seqemu -exp fig9,fig12   # with trap-coalescing ablation columns
//	fpvm-bench -json -quick              # machine-readable per-workload records
//	fpvm-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fpvm/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids (empty = all)")
		prec    = flag.Uint("prec", 200, "MPFR precision in bits")
		quick   = flag.Bool("quick", false, "smaller configurations for a fast pass")
		list    = flag.Bool("list", false, "list experiments")
		jobs    = flag.Int("j", 0, "experiment cells to run concurrently (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut = flag.Bool("json", false, "emit machine-readable per-workload records (cycles, traps, sequences, GC) instead of figure tables")
		seqemu  = flag.Bool("seqemu", false, "enable sequence emulation (trap coalescing); adds ablation columns to fig9/fig12")
		seqlen  = flag.Int("seqlen", 16, "max instructions coalesced per trap delivery (with -seqemu)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	maxSeq := 0
	if *seqemu {
		maxSeq = *seqlen
	}

	if *jsonOut {
		err := experiments.BenchJSON(experiments.Options{
			W:              os.Stdout,
			Prec:           *prec,
			Quick:          *quick,
			Workers:        *jobs,
			MaxSequenceLen: maxSeq,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpvm-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *exp == "" {
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for i, id := range ids {
		e, ok := experiments.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "fpvm-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
			fmt.Println(strings.Repeat("=", 100))
			fmt.Println()
		}
		start := time.Now()
		err := e.Run(experiments.Options{
			W:              os.Stdout,
			Prec:           *prec,
			Quick:          *quick,
			Workers:        *jobs,
			MaxSequenceLen: maxSeq,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpvm-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
