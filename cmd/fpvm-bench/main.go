// fpvm-bench regenerates the tables and figures of the FPVM paper's
// evaluation (§5). Each experiment prints a plain-text table shaped like
// the corresponding figure.
//
// Usage:
//
//	fpvm-bench                 # run every experiment
//	fpvm-bench -exp fig12      # one experiment
//	fpvm-bench -exp fig9 -prec 512 -quick
//	fpvm-bench -seqemu -exp fig9,fig12   # with trap-coalescing ablation columns
//	fpvm-bench -json -quick              # machine-readable per-workload records
//	fpvm-bench -json -quick -topsites 5  # records with per-PC trap-site rankings
//	fpvm-bench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fpvm/internal/experiments"
)

// startProfiles arms the optional pprof outputs and returns a stop function
// that must run on every exit path (CPU profiling stops, and the heap profile
// is written after a forced GC so live objects dominate the snapshot).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err == nil {
				runtime.GC()
				pprof.Lookup("allocs").WriteTo(f, 0)
				f.Close()
			}
		}
	}, nil
}

func main() { os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr)) }

// writeDoc renders the bench document as indented JSON.
func writeDoc(w io.Writer, doc *experiments.BenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Run is the testable entry point: it executes the CLI with the given
// arguments and output streams and returns the process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpvm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "comma-separated experiment ids (empty = all)")
		prec     = fs.Uint("prec", 200, "MPFR precision in bits")
		quick    = fs.Bool("quick", false, "smaller configurations for a fast pass")
		list     = fs.Bool("list", false, "list experiments")
		jobs     = fs.Int("j", 0, "experiment cells to run concurrently (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut  = fs.Bool("json", false, "emit machine-readable per-workload records (cycles, traps, sequences, GC) instead of figure tables")
		seqemu   = fs.Bool("seqemu", false, "enable sequence emulation (trap coalescing); adds ablation columns to fig9/fig12")
		seqlen   = fs.Int("seqlen", 16, "max instructions coalesced per trap delivery (with -seqemu)")
		jit      = fs.Bool("jit", false, "enable the trace-JIT superblock tier; adds ablation columns to fig9/fig12 and jit rows to -json")
		jitT     = fs.Int("jitthreshold", 8, "deliveries at one site before its run is compiled into a superblock (with -jit)")
		stitch   = fs.Bool("stitch", false, "enable superblock stitching (requires -jit); adds a jit+stitch ablation rung and a warm shared-cache session-load record to -json")
		stitchD  = fs.Int("stitchdepth", 4, "max chained superblocks per dispatch (with -stitch)")
		topSites = fs.Int("topsites", 0, "with -json: attach trap telemetry and export the N hottest trap sites per record")
		storm    = fs.Uint64("storm", 0, "trap-storm governor threshold: sites trapping more than N times are patched to demote and stay native (0 = off)")
		sessions = fs.Int("sessions", 0, "with -json: attach a session-load record driving N runs through a pooled session (sessions/sec, p50/p99)")
		loadJobs = fs.Int("load-j", 16, "with -sessions: concurrent load-harness workers")
		outFile  = fs.String("out", "", "with -json: also write the document to this file (e.g. BENCH_6.json)")
		gateFile = fs.String("gate", "", "regression gate: run the -json bench and compare against this baseline document, exiting 1 on cycles/traps/ns-per-step regressions")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the bench run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	maxSeq := 0
	if *seqemu {
		maxSeq = *seqlen
	}
	jitThresh := 0
	if *jit {
		jitThresh = *jitT
	}
	stitchDepth := 0
	if *stitch {
		if !*jit {
			fmt.Fprintln(stderr, "fpvm-bench: -stitch requires -jit")
			return 2
		}
		stitchDepth = *stitchD
	}

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "fpvm-bench: %v\n", err)
		return 1
	}
	defer stopProf()

	if *jsonOut || *gateFile != "" {
		opts := experiments.Options{
			W:              stdout,
			Prec:           *prec,
			Quick:          *quick,
			Workers:        *jobs,
			MaxSequenceLen: maxSeq,
			TopSites:       *topSites,
			StormThreshold: *storm,
			JITThreshold:   jitThresh,
			StitchDepth:    stitchDepth,
			Sessions:       *sessions,
			LoadWorkers:    *loadJobs,
		}
		doc, err := experiments.BenchDocData(opts)
		if err != nil {
			fmt.Fprintf(stderr, "fpvm-bench: %v\n", err)
			return 1
		}
		if *jsonOut {
			if err := writeDoc(stdout, doc); err != nil {
				fmt.Fprintf(stderr, "fpvm-bench: %v\n", err)
				return 1
			}
		}
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				fmt.Fprintf(stderr, "fpvm-bench: %v\n", err)
				return 1
			}
			werr := writeDoc(f, doc)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(stderr, "fpvm-bench: writing %s: %v\n", *outFile, werr)
				return 1
			}
		}
		if *gateFile != "" {
			base, err := experiments.ReadBenchDoc(*gateFile)
			if err != nil {
				fmt.Fprintf(stderr, "fpvm-bench: %v\n", err)
				return 1
			}
			if bad := experiments.GateBench(base, doc); len(bad) > 0 {
				fmt.Fprintf(stderr, "fpvm-bench: %d regressions vs %s:\n", len(bad), *gateFile)
				for _, msg := range bad {
					fmt.Fprintf(stderr, "  %s\n", msg)
				}
				return 1
			}
			fmt.Fprintf(stderr, "fpvm-bench: no regressions vs %s (%d rows)\n", *gateFile, len(base.Rows))
		}
		return 0
	}

	var ids []string
	if *exp == "" {
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for i, id := range ids {
		e, ok := experiments.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(stderr, "fpvm-bench: unknown experiment %q (try -list)\n", id)
			return 1
		}
		if i > 0 {
			fmt.Fprintln(stdout)
			fmt.Fprintln(stdout, strings.Repeat("=", 100))
			fmt.Fprintln(stdout)
		}
		start := time.Now()
		err := e.Run(experiments.Options{
			W:              stdout,
			Prec:           *prec,
			Quick:          *quick,
			Workers:        *jobs,
			MaxSequenceLen: maxSeq,
			TopSites:       *topSites,
			StormThreshold: *storm,
			JITThreshold:   jitThresh,
			StitchDepth:    stitchDepth,
		})
		if err != nil {
			fmt.Fprintf(stderr, "fpvm-bench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stderr, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
