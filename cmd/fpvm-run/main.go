// fpvm-run executes a program binary (or named workload) on the machine
// simulator, natively or under FPVM with a chosen alternative arithmetic
// system — the equivalent of LD_PRELOADing the FPVM library under an
// existing binary (§4.1).
//
// Usage:
//
//	fpvm-run -workload "Lorenz Attractor" -arith mpfr -prec 200
//	fpvm-run -bin prog.fpvm -arith posit32
//	fpvm-run -asm prog.s -arith vanilla -stats
//	fpvm-run -oracle                          # differential oracle, all targets
//	fpvm-run -oracle -workload "Three-Body"   # oracle on one workload
package main

import (
	"flag"
	"fmt"
	"os"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/machine"
	"fpvm/internal/oracle"
	"fpvm/internal/patch"
	"fpvm/internal/posit"
	"fpvm/internal/trap"
	"fpvm/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "named workload to run (see -list)")
		asmFile   = flag.String("asm", "", "assembly source file to assemble and run")
		arithName = flag.String("arith", "", "arithmetic system: vanilla, mpfr, adaptive, interval, bfloat16, posit8/16/32/64 (empty = native, no FPVM)")
		prec      = flag.Uint("prec", 200, "MPFR precision in bits")
		noPatch   = flag.Bool("no-patch", false, "skip static analysis and correctness patching")
		patchMode = flag.Bool("patch-mode", false, "use trap-and-patch instead of trap-and-emulate (§3.2)")
		delivery  = flag.String("delivery", "user-signal", "trap delivery model: user-signal, kernel, user-to-user")
		stats     = flag.Bool("stats", false, "print execution statistics")
		list      = flag.Bool("list", false, "list available workloads")
		maxInst   = flag.Uint64("max-inst", 0, "instruction budget (0 = unlimited)")
		spyMode   = flag.Bool("spy", false, "FPSpy mode: record FP events without changing results")
		oracleRun = flag.Bool("oracle", false, "differential oracle: run native, FPVM+vanilla (must be bit-identical), and high-precision shadows, and report divergence")
		seqemu    = flag.Bool("seqemu", false, "sequence emulation: coalesce straight-line FP runs into one trap delivery")
		seqlen    = flag.Int("seqlen", 16, "max instructions coalesced per trap delivery (with -seqemu)")
	)
	flag.Parse()

	maxSeq := 0
	if *seqemu {
		maxSeq = *seqlen
	}

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}

	if *oracleRun {
		runOracle(*workload, *asmFile, *prec, *maxInst, *noPatch, maxSeq)
		return
	}

	prog, err := loadProgram(*workload, *asmFile)
	if err != nil {
		fatal(err)
	}

	m, err := machine.New(prog, os.Stdout)
	if err != nil {
		fatal(err)
	}
	switch *delivery {
	case "user-signal":
	case "kernel":
		m.Delivery, m.CorrectnessDelivery = trap.DeliverKernel, trap.DeliverKernel
	case "user-to-user":
		m.Delivery, m.CorrectnessDelivery = trap.DeliverUserToUser, trap.DeliverUserToUser
	default:
		fatal(fmt.Errorf("unknown delivery model %q", *delivery))
	}

	if *spyMode {
		spy := fpvm.AttachSpy(m)
		if err := m.Run(*maxInst); err != nil {
			fatal(err)
		}
		spy.Report(os.Stderr, 10)
		return
	}

	var vm *fpvm.VM
	if *arithName != "" {
		sys, err := selectArith(*arithName, *prec)
		if err != nil {
			fatal(err)
		}
		if !*noPatch {
			p, err := patch.Apply(prog, nil)
			if err != nil {
				fatal(fmt.Errorf("static analysis: %w", err))
			}
			p.Install(m)
			if *stats {
				p.Summary(os.Stderr)
			}
		}
		vm = fpvm.Attach(m, fpvm.Config{System: sys, MaxSequenceLen: maxSeq})
		if *patchMode {
			vm.PatchAllFPArith()
		}
	}

	if err := m.Run(*maxInst); err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "instructions: %d (fp: %d)\n",
			m.Stats.Instructions, m.Stats.FPInstructions)
		fmt.Fprintf(os.Stderr, "cycles:       %d\n", m.Cycles)
		if vm != nil {
			s := vm.Stats
			fmt.Fprintf(os.Stderr, "fp traps:     %d (decode cache hit rate %.4f)\n",
				s.Traps, hitRate(s.DecodeHits, s.DecodeMisses))
			if s.Sequences > 0 {
				fmt.Fprintf(os.Stderr, "seqemu:       %d sequences, %d coalesced (mean run %.2f)\n",
					s.Sequences, s.Coalesced,
					float64(s.Traps+s.Coalesced)/float64(s.Traps))
			}
			fmt.Fprintf(os.Stderr, "emulated:     %d scalars (promotions %d, unboxings %d)\n",
				s.Emulated, s.Promotions, s.Unboxings)
			fmt.Fprintf(os.Stderr, "correctness:  %d traps, %d demotions\n",
				s.CorrectTraps, s.Demotions)
			fmt.Fprintf(os.Stderr, "gc:           %d passes, %d freed, %d alive\n",
				s.GC.Passes, s.GC.TotalFreed, vm.Arena.Live())
			fmt.Fprintf(os.Stderr, "trap delivery: %d cycles over %d traps\n",
				m.Stats.Trap.TotalCycles(), m.Stats.Trap.Delivered)
		}
	}
}

// runOracle executes the differential oracle — over one named target when
// -workload or -asm is given, else over every workload and example — and
// exits non-zero if any virtualized-vanilla run is not bit-identical to
// native execution.
func runOracle(workload, asmFile string, prec uint, maxInst uint64, noPatch bool, maxSeq int) {
	var targets []oracle.Target
	switch {
	case workload != "":
		t, err := oracle.Lookup(workload)
		if err != nil {
			fatal(err)
		}
		targets = []oracle.Target{t}
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			fatal(err)
		}
		targets = []oracle.Target{{
			Name:  asmFile,
			Build: func() (*isa.Program, error) { return asm.Assemble(string(src)) },
		}}
	default:
		targets = oracle.AllTargets()
	}

	opts := oracle.Options{
		Systems:        []arith.System{arith.NewMPFR(prec), arith.NewPosit(posit.Posit32)},
		MaxInst:        maxInst,
		NoPatch:        noPatch,
		MaxSequenceLen: maxSeq,
	}
	failed := 0
	for i, t := range targets {
		rep, err := oracle.Run(t, opts)
		if err != nil {
			fatal(err)
		}
		if i > 0 {
			fmt.Println()
		}
		rep.Write(os.Stdout)
		if !rep.Ok() {
			failed++
		}
	}
	fmt.Printf("\noracle: %d/%d targets bit-identical under virtualized vanilla\n",
		len(targets)-failed, len(targets))
	if failed > 0 {
		os.Exit(1)
	}
}

func loadProgram(workload, asmFile string) (*isa.Program, error) {
	switch {
	case workload != "":
		w, ok := workloads.Get(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (try -list)", workload)
		}
		return w.Build()
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src))
	default:
		return nil, fmt.Errorf("one of -workload or -asm is required")
	}
}

func selectArith(name string, prec uint) (arith.System, error) {
	switch name {
	case "vanilla":
		return arith.Vanilla{}, nil
	case "mpfr":
		return arith.NewMPFR(prec), nil
	case "adaptive":
		return arith.NewAdaptiveMPFR(prec, 16*prec), nil
	case "interval":
		return arith.IntervalSystem{}, nil
	case "bfloat16":
		return arith.BFloat16System{}, nil
	case "posit8":
		return arith.NewPosit(posit.Posit8), nil
	case "posit16":
		return arith.NewPosit(posit.Posit16), nil
	case "posit32":
		return arith.NewPosit(posit.Posit32), nil
	case "posit64":
		return arith.NewPosit(posit.Posit64), nil
	default:
		return nil, fmt.Errorf("unknown arithmetic system %q", name)
	}
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpvm-run:", err)
	os.Exit(1)
}
