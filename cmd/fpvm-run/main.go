// fpvm-run executes a program binary (or named workload) on the machine
// simulator, natively or under FPVM with a chosen alternative arithmetic
// system — the equivalent of LD_PRELOADing the FPVM library under an
// existing binary (§4.1).
//
// Usage:
//
//	fpvm-run -workload "Lorenz Attractor" -arith mpfr -prec 200
//	fpvm-run -bin prog.fpvm -arith posit32
//	fpvm-run -asm prog.s -arith vanilla -stats
//	fpvm-run -workload "Lorenz Attractor/" -arith mpfr -trace out.jsonl -topsites 10
//	fpvm-run -oracle                          # differential oracle, all targets
//	fpvm-run -oracle -workload "Three-Body"   # oracle on one workload
//	fpvm-run -workload FBench -arith vanilla -faults seed=7,rate=0.001 -stats
//	fpvm-run -workload FBench -arith mpfr -storm 2000 -stats
//	fpvm-run -chaos -seeds 4                  # chaos suite, all targets
//	fpvm-run -chaos -workload FBench -faults seed=9,rate=0.002
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"fpvm/internal/arith"
	"fpvm/internal/asm"
	"fpvm/internal/chaos"
	"fpvm/internal/faultinject"
	"fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/machine"
	"fpvm/internal/oracle"
	"fpvm/internal/patch"
	"fpvm/internal/posit"
	"fpvm/internal/sanitize"
	"fpvm/internal/telemetry"
	"fpvm/internal/trap"
	"fpvm/internal/workloads"
)

func main() { os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr)) }

// startProfiles arms the optional pprof outputs and returns a stop function
// that must run on every exit path (CPU profiling stops, and the heap profile
// is written after a forced GC so live objects dominate the snapshot).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err == nil {
				runtime.GC()
				pprof.Lookup("allocs").WriteTo(f, 0)
				f.Close()
			}
		}
	}, nil
}

// Run is the testable entry point: it executes the CLI with the given
// arguments and output streams and returns the process exit code. main is a
// one-line wrapper, so end-to-end tests drive the exact flag surface and
// output shapes users see.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpvm-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "", "named workload to run (see -list)")
		asmFile   = fs.String("asm", "", "assembly source file to assemble and run")
		arithName = fs.String("arith", "", "arithmetic system: vanilla, mpfr, adaptive, interval, bfloat16, posit8/16/32/64 (empty = native, no FPVM)")
		prec      = fs.Uint("prec", 200, "MPFR precision in bits")
		noPatch   = fs.Bool("no-patch", false, "skip static analysis and correctness patching")
		patchMode = fs.Bool("patch-mode", false, "use trap-and-patch instead of trap-and-emulate (§3.2)")
		delivery  = fs.String("delivery", "user-signal", "trap delivery model: user-signal, kernel, user-to-user")
		stats     = fs.Bool("stats", false, "print execution statistics")
		list      = fs.Bool("list", false, "list available workloads")
		maxInst   = fs.Uint64("max-inst", 0, "instruction budget (0 = unlimited)")
		timeout   = fs.Duration("timeout", 0, "wall-clock deadline: the run is preempted at the next checkpoint, truncated at an instruction boundary with partial results and stats intact, and exits 0 (0 = none)")
		spyMode   = fs.Bool("spy", false, "FPSpy mode: record FP events without changing results")
		oracleRun = fs.Bool("oracle", false, "differential oracle: run native, FPVM+vanilla (must be bit-identical), and high-precision shadows, and report divergence")
		seqemu    = fs.Bool("seqemu", false, "sequence emulation: coalesce straight-line FP runs into one trap delivery")
		seqlen    = fs.Int("seqlen", 16, "max instructions coalesced per trap delivery (with -seqemu)")
		jit       = fs.Bool("jit", false, "trace-JIT: compile hot trap sites into cached superblocks that re-enter with zero delivery/decode/bind")
		jitThresh = fs.Int("jitthreshold", 8, "deliveries at one site before its run is compiled into a superblock (with -jit)")
		stitch    = fs.Bool("stitch", false, "superblock stitching: chain a retiring superblock directly into its successor's trace, skipping the patch dispatch (requires -jit)")
		stitchD   = fs.Int("stitchdepth", 4, "max chained superblocks per dispatch (with -stitch)")
		traceOut  = fs.String("trace", "", "write the telemetry event stream (trap entry/exit, promotions, demotions, GC epochs, sequences) to this JSONL file")
		topSites  = fs.Int("topsites", 0, "print the N hottest trap sites (per-PC hits, attributed cycles, exception flags) after the run")
		storm     = fs.Uint64("storm", 0, "trap-storm governor threshold: sites trapping more than N times are patched to demote and stay native (0 = off)")
		sanRun    = fs.Bool("sanitize", false, "numerical sanitizer: shadow every emulated FP op with high-precision and interval arithmetic and report ranked cancellation/error sites (results stay bit-identical)")
		sanThresh = fs.Float64("sanitize-threshold", sanitize.DefaultThresholdBits, "lost-bits threshold above which a site is flagged (with -sanitize)")
		sanPrec   = fs.Uint("sanitize-prec", 0, "high-precision shadow mantissa bits (0 = default, with -sanitize)")
		certify   = fs.Bool("certify", false, "interval certification: record an enclosure per guest output and fail unless every native output is proved contained (implies -sanitize)")
		faults    = fs.String("faults", "", "fault-injection spec, e.g. seed=7,rate=0.001,decode=0.01,corrupt=0.0001,site=0x40:emulate")
		chaosRun  = fs.Bool("chaos", false, "chaos suite: sweep targets through seeded fault-injection campaigns and enforce the degradation invariants")
		seeds     = fs.Int("seeds", 3, "injection seeds per target per tier (with -chaos)")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-run:", err)
		return 1
	}

	sanitizing := *sanRun || *certify
	if sanitizing && *arithName == "" {
		// The sanitizer wraps an arithmetic system; certification soundness is
		// stated against Vanilla's per-op rounding, so that is the default.
		*arithName = "vanilla"
	}

	maxSeq := 0
	if *seqemu {
		maxSeq = *seqlen
	}
	jitT := 0
	if *jit {
		jitT = *jitThresh
	}
	stitchDepth := 0
	if *stitch {
		if !*jit {
			return fail(fmt.Errorf("-stitch requires -jit"))
		}
		stitchDepth = *stitchD
	}

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	var injectCfg *faultinject.Config
	if *faults != "" {
		cfg, err := faultinject.ParseSpec(*faults)
		if err != nil {
			return fail(fmt.Errorf("-faults: %w", err))
		}
		injectCfg = &cfg
	}

	if *chaosRun {
		return runChaos(stdout, stderr, *workload, injectCfg, *seeds, *storm, jitT, stitchDepth, *maxInst, sanitizing)
	}

	if *oracleRun {
		return runOracle(stdout, stderr, *workload, *asmFile, *prec, *maxInst, *noPatch, maxSeq, *storm, jitT, stitchDepth, injectCfg)
	}

	prog, err := loadProgram(*workload, *asmFile)
	if err != nil {
		return fail(err)
	}

	m, err := machine.New(prog, stdout)
	if err != nil {
		return fail(err)
	}
	switch *delivery {
	case "user-signal":
	case "kernel":
		m.Delivery, m.CorrectnessDelivery = trap.DeliverKernel, trap.DeliverKernel
	case "user-to-user":
		m.Delivery, m.CorrectnessDelivery = trap.DeliverUserToUser, trap.DeliverUserToUser
	default:
		return fail(fmt.Errorf("unknown delivery model %q", *delivery))
	}

	// -timeout arms the same cooperative checkpoints the serving stack uses
	// for request deadlines (DESIGN.md §13): a timer goroutine stores the
	// flag, Run observes it at an instruction boundary, and the truncated
	// run is harvested like a budget exhaustion rather than killed.
	if *timeout > 0 {
		cancel := new(atomic.Bool)
		timer := time.AfterFunc(*timeout, func() { cancel.Store(true) })
		defer timer.Stop()
		m.Preempt = cancel
	}

	// Telemetry: attach the collector before any handler is installed so
	// every delivery in the run is attributed.
	var telem *telemetry.Collector
	if *traceOut != "" || *topSites > 0 {
		telem = telemetry.NewCollector(0)
		m.Telem = telem
	}

	if *spyMode {
		spy := fpvm.AttachSpy(m)
		if err := runToDeadline(m, *maxInst, stderr); err != nil {
			return fail(err)
		}
		spy.Report(stderr, 10)
		return finishTelemetry(stdout, stderr, telem, *traceOut, *topSites)
	}

	var vm *fpvm.VM
	if *arithName == "" && (injectCfg != nil || *storm > 0 || jitT > 0) {
		return fail(fmt.Errorf("-faults, -storm, and -jit act on the FPVM runtime; pick an -arith system"))
	}
	var inj *faultinject.Injector
	var san *sanitize.Sanitizer
	if *arithName != "" {
		sys, err := selectArith(*arithName, *prec)
		if err != nil {
			return fail(err)
		}
		if !*noPatch {
			p, err := patch.Apply(prog, nil)
			if err != nil {
				return fail(fmt.Errorf("static analysis: %w", err))
			}
			p.Install(m)
			if *stats {
				p.Summary(stderr)
			}
		}
		if injectCfg != nil {
			inj = faultinject.New(*injectCfg)
		}
		if sanitizing {
			san = sanitize.New(sanitize.Options{
				Primary:       sys,
				Prec:          *sanPrec,
				ThresholdBits: *sanThresh,
				Certify:       *certify,
			})
		}
		vm = fpvm.Attach(m, fpvm.Config{
			System:         sys,
			MaxSequenceLen: maxSeq,
			StormThreshold: *storm,
			JITThreshold:   jitT,
			StitchDepth:    stitchDepth,
			Inject:         inj,
			Sanitize:       san,
		})
		if *patchMode {
			vm.PatchAllFPArith()
		}
	}

	if err := runToDeadline(m, *maxInst, stderr); err != nil {
		return fail(err)
	}

	if *stats {
		fmt.Fprintf(stderr, "instructions: %d (fp: %d)\n",
			m.Stats.Instructions, m.Stats.FPInstructions)
		fmt.Fprintf(stderr, "cycles:       %d\n", m.Cycles)
		if vm != nil {
			s := vm.Stats
			fmt.Fprintf(stderr, "fp traps:     %d (decode cache hit rate %.4f)\n",
				s.Traps, hitRate(s.DecodeHits, s.DecodeMisses))
			if s.Sequences > 0 {
				fmt.Fprintf(stderr, "seqemu:       %d sequences, %d coalesced (mean run %.2f)\n",
					s.Sequences, s.Coalesced,
					float64(s.Traps+s.Coalesced)/float64(s.Traps))
			}
			if ms := m.Stats; ms.SBCompiled > 0 || ms.SBHits > 0 {
				fmt.Fprintf(stderr, "jit:          %d superblocks compiled, %d hits, %d stitched, %d invalidations\n",
					ms.SBCompiled, ms.SBHits, ms.SBStitched, ms.SBInvalidations)
			}
			fmt.Fprintf(stderr, "emulated:     %d scalars (promotions %d, unboxings %d)\n",
				s.Emulated, s.Promotions, s.Unboxings)
			fmt.Fprintf(stderr, "correctness:  %d traps, %d demotions\n",
				s.CorrectTraps, s.Demotions)
			fmt.Fprintf(stderr, "gc:           %d passes, %d freed, %d alive\n",
				s.GC.Passes, s.GC.TotalFreed, vm.Arena.Live())
			if s.Degradations > 0 || s.StormPatches > 0 {
				fmt.Fprintf(stderr, "resilience:   %d degradations, %d storm patches (%d native retirements)\n",
					s.Degradations, s.StormPatches, s.StormNative)
			}
			if inj != nil {
				fmt.Fprintf(stderr, "injected:     %s (%d boxes corrupted)\n",
					inj.Summary(), inj.Corrupted)
			}
			fmt.Fprintf(stderr, "trap delivery: %d cycles over %d traps\n",
				m.Stats.Trap.TotalCycles(), m.Stats.Trap.Delivered)
		}
	}
	rc := finishTelemetry(stdout, stderr, telem, *traceOut, *topSites)
	if san != nil {
		rep := san.Snapshot()
		n := *topSites
		if n <= 0 {
			n = 10
		}
		rep.Write(stdout, n)
		if c := rep.Certification; c != nil {
			c.Write(stdout)
			if !c.Pass() && rc == 0 {
				rc = 1
			}
		}
	}
	return rc
}

// runToDeadline runs the machine and degrades a deadline preemption the way
// the serving stack degrades a request deadline: the truncated run keeps all
// harvested state (output, stats, telemetry — consistent at an instruction
// boundary), a note goes to stderr, and the exit code stays 0. Every other
// error remains fatal.
func runToDeadline(m *machine.Machine, maxInst uint64, stderr io.Writer) error {
	err := m.Run(maxInst)
	var dl *machine.DeadlineError
	if errors.As(err, &dl) {
		fmt.Fprintf(stderr, "fpvm-run: deadline exceeded at %#x after %d instructions; run truncated\n",
			dl.RIP, dl.Instructions)
		return nil
	}
	return err
}

// finishTelemetry renders the post-run telemetry artifacts: the hot-site
// ranking to stdout and the JSONL event trace to the -trace file.
func finishTelemetry(stdout, stderr io.Writer, telem *telemetry.Collector, traceOut string, topSites int) int {
	if telem == nil {
		return 0
	}
	if topSites > 0 {
		telem.WriteTopSites(stdout, topSites)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "fpvm-run:", err)
			return 1
		}
		werr := telem.WriteJSONL(f)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "fpvm-run: writing trace:", werr)
			return 1
		}
	}
	return 0
}

// runOracle executes the differential oracle — over one named target when
// -workload or -asm is given, else over every workload and example — and
// returns non-zero if any virtualized-vanilla run is not bit-identical to
// native execution.
func runOracle(stdout, stderr io.Writer, workload, asmFile string, prec uint, maxInst uint64, noPatch bool, maxSeq int, storm uint64, jitT, stitchDepth int, inject *faultinject.Config) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-run:", err)
		return 1
	}
	var targets []oracle.Target
	switch {
	case workload != "":
		t, err := oracle.Lookup(workload)
		if err != nil {
			return fail(err)
		}
		targets = []oracle.Target{t}
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return fail(err)
		}
		targets = []oracle.Target{{
			Name:  asmFile,
			Build: func() (*isa.Program, error) { return asm.Assemble(string(src)) },
		}}
	default:
		targets = oracle.AllTargets()
	}

	opts := oracle.Options{
		Systems:        []arith.System{arith.NewMPFR(prec), arith.NewPosit(posit.Posit32)},
		MaxInst:        maxInst,
		NoPatch:        noPatch,
		MaxSequenceLen: maxSeq,
		StormThreshold: storm,
		JITThreshold:   jitT,
		StitchDepth:    stitchDepth,
		Inject:         inject,
	}
	failed := 0
	for i, t := range targets {
		rep, err := oracle.Run(t, opts)
		if err != nil {
			return fail(err)
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		rep.Write(stdout)
		if !rep.Ok() {
			failed++
		}
	}
	fmt.Fprintf(stdout, "\noracle: %d/%d targets bit-identical under virtualized vanilla\n",
		len(targets)-failed, len(targets))
	if failed > 0 {
		return 1
	}
	return 0
}

// runChaos executes the chaos suite: seeded fault-injection campaigns over
// the selected targets (all of them when -workload is empty), enforcing the
// hard degradation invariants. A -faults spec seeds the sweep: its seed
// becomes the base seed, its highest seam rate the uniform error rate, and
// its corrupt rate the corruption-tier rate.
func runChaos(stdout, stderr io.Writer, workload string, inject *faultinject.Config, seeds int, storm uint64, jitT, stitchDepth int, maxInst uint64, sanitize bool) int {
	opts := chaos.Options{
		Seeds:          seeds,
		StormThreshold: storm,
		JITThreshold:   jitT,
		StitchDepth:    stitchDepth,
		MaxInst:        maxInst,
		Sanitize:       sanitize,
		Log:            stderr,
	}
	if workload != "" {
		t, err := oracle.Lookup(workload)
		if err != nil {
			fmt.Fprintln(stderr, "fpvm-run:", err)
			return 1
		}
		opts.Targets = []oracle.Target{t}
	}
	if inject != nil {
		opts.BaseSeed = inject.Seed
		for seam, r := range inject.Rate {
			// run-panic is its own tier, not part of the uniform error
			// sweep: it escapes the degradation engine by design, so its
			// rate arms the panic tier instead of inflating the error rate.
			if faultinject.Seam(seam) == faultinject.SeamRunPanic {
				opts.PanicRate = r
				continue
			}
			if r > opts.Rate {
				opts.Rate = r
			}
		}
		if inject.CorruptRate > 0 {
			opts.CorruptRate = inject.CorruptRate
		}
	}
	s := chaos.Run(opts)
	s.WriteReport(stdout)
	if !s.Ok() {
		return 1
	}
	return 0
}

func loadProgram(workload, asmFile string) (*isa.Program, error) {
	switch {
	case workload != "":
		w, ok := workloads.Get(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (try -list)", workload)
		}
		return w.Build()
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src))
	default:
		return nil, fmt.Errorf("one of -workload or -asm is required")
	}
}

func selectArith(name string, prec uint) (arith.System, error) {
	return arith.Select(name, prec)
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
