package main

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"fpvm/internal/arith"
	"fpvm/internal/session"
	"fpvm/internal/workloads"
)

var truncNote = regexp.MustCompile(`deadline exceeded at 0x[0-9a-f]+ after (\d+) instructions`)

// TestTimeoutTruncatesLikeService pins the -timeout contract to the serving
// stack's: both ride the same machine-level deadline checkpoints, so a CLI
// run truncated at instruction boundary N harvests bit-identical state —
// output, instruction count, modeled cycles — to a session (the service's
// run path) canceled at the same boundary. The CLI's boundary is wall-clock
// dependent, so the test reads it from the truncation note and replays the
// session with that exact checkpoint interval and a pre-fired flag.
func TestTimeoutTruncatesLikeService(t *testing.T) {
	var out, errb bytes.Buffer
	code := Run([]string{
		"-workload", "Lorenz Attractor/", "-arith", "vanilla",
		"-timeout", "1ns", "-stats",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("-timeout run exited %d, want 0 (deadline degrades, never kills):\n%s", code, errb.String())
	}
	m := truncNote.FindStringSubmatch(errb.String())
	if m == nil {
		t.Fatalf("no truncation note on stderr:\n%s", errb.String())
	}
	n, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil || n == 0 {
		t.Fatalf("bad truncation boundary %q", m[1])
	}
	if !strings.Contains(errb.String(), "instructions:") || !strings.Contains(errb.String(), "cycles:") {
		t.Fatalf("-stats did not print after truncation:\n%s", errb.String())
	}

	w, ok := workloads.Get("Lorenz Attractor/")
	if !ok {
		t.Fatal("Lorenz Attractor/ workload missing")
	}
	prog, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	cancel := new(atomic.Bool)
	cancel.Store(true) // pre-fired: the session stops at exactly its first checkpoint
	res, err := session.New().Run(prog, session.Config{
		System:       arith.Vanilla{},
		Cancel:       cancel,
		PreemptEvery: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineExceeded {
		t.Fatal("session run did not report DeadlineExceeded")
	}
	if res.Instructions != n {
		t.Fatalf("session truncated at %d instructions, CLI at %d", res.Instructions, n)
	}
	if got := out.String(); got != res.Output {
		t.Fatalf("truncated guest output diverged:\nCLI:     %q\nsession: %q", got, res.Output)
	}
	cycles := regexp.MustCompile(`cycles:\s+(\d+)`).FindStringSubmatch(errb.String())
	if cycles == nil {
		t.Fatalf("no cycles line:\n%s", errb.String())
	}
	if c, _ := strconv.ParseUint(cycles[1], 10, 64); c != res.Cycles {
		t.Fatalf("truncated cycle counts diverged: CLI %d, session %d", c, res.Cycles)
	}
}

// TestTimeoutUnfiredIsFree pins the zero-cost contract at the CLI surface:
// a -timeout generous enough to never fire leaves the run bit- and
// cycle-identical to one with no -timeout at all.
func TestTimeoutUnfiredIsFree(t *testing.T) {
	run := func(extra ...string) (string, string) {
		var out, errb bytes.Buffer
		args := append([]string{"-workload", "FBench/", "-arith", "vanilla", "-stats"}, extra...)
		if code := Run(args, &out, &errb); code != 0 {
			t.Fatalf("run %v exited %d:\n%s", extra, code, errb.String())
		}
		return out.String(), errb.String()
	}
	baseOut, baseStats := run()
	armedOut, armedStats := run("-timeout", "1h")
	if baseOut != armedOut {
		t.Fatalf("armed-but-unfired -timeout changed guest output:\nbase:  %q\narmed: %q", baseOut, armedOut)
	}
	if baseStats != armedStats {
		t.Fatalf("armed-but-unfired -timeout changed stats:\nbase:\n%s\narmed:\n%s", baseStats, armedStats)
	}
}
