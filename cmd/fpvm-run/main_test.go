package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives the binary's real entry point in-process.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeAsm(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const smokeAsm = `
	movsd f0, =1.5
	movsd f1, =0.25
	addsd f0, f1
	mulsd f1, f0
	outf f0
	halt
`

func TestRunList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"Lorenz Attractor/", "FBench/", "Three-Body/"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAsmUnderEachMode(t *testing.T) {
	asm := writeAsm(t, smokeAsm)
	for _, args := range [][]string{
		{"-asm", asm},                      // native
		{"-asm", asm, "-arith", "vanilla"}, // FPVM trap-and-emulate
		{"-asm", asm, "-arith", "mpfr", "-prec", "100"},
		{"-asm", asm, "-arith", "vanilla", "-patch-mode"},
		{"-asm", asm, "-arith", "vanilla", "-seqemu"},
		{"-asm", asm, "-spy"},
		{"-asm", asm, "-arith", "vanilla", "-delivery", "kernel"},
		{"-asm", asm, "-arith", "vanilla", "-stats"},
	} {
		code, out, stderr := runCLI(t, args...)
		if code != 0 {
			t.Errorf("%v exited %d: %s", args, code, stderr)
			continue
		}
		if !strings.Contains(out, "1.75") {
			t.Errorf("%v: program output missing expected value 1.75:\n%s", args, out)
		}
	}
}

func TestRunStatsOutput(t *testing.T) {
	asm := writeAsm(t, smokeAsm)
	code, _, stderr := runCLI(t, "-asm", asm, "-arith", "vanilla", "-stats")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	for _, want := range []string{"instructions:", "cycles:", "fp traps:", "gc:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-stats output missing %q:\n%s", want, stderr)
		}
	}
}

func TestRunErrors(t *testing.T) {
	asm := writeAsm(t, smokeAsm)
	tests := []struct {
		name string
		args []string
		code int
	}{
		{"no input", nil, 1},
		{"unknown workload", []string{"-workload", "nope"}, 1},
		{"unreadable asm", []string{"-asm", "/nonexistent/prog.s"}, 1},
		{"unknown arith", []string{"-asm", asm, "-arith", "quaternion"}, 1},
		{"unknown delivery", []string{"-asm", asm, "-delivery", "telepathy"}, 1},
		{"bad flag", []string{"-no-such-flag"}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tt.args...)
			if code != tt.code {
				t.Errorf("args %v exited %d, want %d (stderr: %s)",
					tt.args, code, tt.code, stderr)
			}
			if code != 0 && stderr == "" {
				t.Errorf("args %v failed silently", tt.args)
			}
		})
	}
}

func TestRunTopSitesReport(t *testing.T) {
	code, out, stderr := runCLI(t,
		"-workload", "FBench/", "-arith", "mpfr", "-topsites", "5")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "trap telemetry:") {
		t.Fatalf("-topsites output missing ranking header:\n%s", out)
	}
	for _, col := range []string{"pc", "cycles", "meanrun", "flags"} {
		if !strings.Contains(out, col) {
			t.Errorf("-topsites table missing column %q", col)
		}
	}
}

func TestRunTraceJSONL(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "out.jsonl")
	code, _, stderr := runCLI(t,
		"-workload", "FBench/", "-arith", "mpfr", "-trace", trace)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	kinds := map[string]int{}
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v", n+1, err)
		}
		ev, _ := m["ev"].(string)
		if n == 0 && ev != "trace-header" {
			t.Fatalf("first trace line ev = %q, want trace-header", ev)
		}
		kinds[ev]++
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("trace has %d lines, want header plus events", n)
	}
	for _, want := range []string{"trap-enter", "trap-exit"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %s events (kinds: %v)", want, kinds)
		}
	}
	if kinds["trap-enter"] != kinds["trap-exit"] {
		t.Errorf("unbalanced trap events: %d enter vs %d exit",
			kinds["trap-enter"], kinds["trap-exit"])
	}
}

func TestRunTraceUnwritable(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-workload", "FBench/", "-arith", "vanilla",
		"-trace", "/nonexistent-dir/out.jsonl")
	if code != 1 {
		t.Fatalf("unwritable -trace exited %d, want 1 (stderr: %s)", code, stderr)
	}
}

func TestRunOracleSingleWorkload(t *testing.T) {
	code, out, stderr := runCLI(t, "-oracle", "-workload", "FBench")
	if code != 0 {
		t.Fatalf("oracle exited %d: %s", code, stderr)
	}
	for _, want := range []string{"PASS", "bit-identical under virtualized vanilla"} {
		if !strings.Contains(out, want) {
			t.Errorf("oracle output missing %q:\n%s", want, out)
		}
	}
}
