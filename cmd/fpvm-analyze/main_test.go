package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestAnalyzeExitCodes pins that every failure path returns non-zero with a
// diagnostic on stderr — the tool must never fail silently with exit 0 when
// its input cannot be read or analyzed.
func TestAnalyzeExitCodes(t *testing.T) {
	dir := t.TempDir()
	badAsm := filepath.Join(dir, "bad.s")
	if err := os.WriteFile(badAsm, []byte("\tfrobnicate r0, r1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	goodAsm := filepath.Join(dir, "good.s")
	if err := os.WriteFile(goodAsm, []byte("\tmovsd f0, =1.5\n\taddsd f0, f0\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		args []string
		code int
	}{
		{"no args", nil, 1},
		{"unknown workload", []string{"-workload", "nope"}, 1},
		{"unreadable file", []string{filepath.Join(dir, "missing.s")}, 1},
		{"bad assembly", []string{badAsm}, 1},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"valid file", []string{goodAsm}, 0},
		{"valid workload", []string{"-workload", "FBench/"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tt.args...)
			if code != tt.code {
				t.Errorf("args %v exited %d, want %d (stderr: %s)",
					tt.args, code, tt.code, stderr)
			}
			if tt.code != 0 && stderr == "" {
				t.Errorf("args %v failed with no diagnostic", tt.args)
			}
		})
	}
}

func TestAnalyzeSummaryOutput(t *testing.T) {
	code, out, stderr := runCLI(t, "-workload", "Lorenz Attractor/", "-v")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	for _, want := range []string{"sources:", "externals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-v output missing %q:\n%s", want, out)
		}
	}
}
