// fpvm-analyze runs the static value-set analysis of §4.2 on a program and
// reports its sources, sinks, and the correctness-trap patch plan — the
// angr + e9patch step of the hybrid FPVM pipeline.
//
// Usage:
//
//	fpvm-analyze -workload "Enzo"
//	fpvm-analyze prog.s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpvm/internal/asm"
	"fpvm/internal/isa"
	"fpvm/internal/patch"
	"fpvm/internal/vsa"
	"fpvm/internal/workloads"
)

func main() { os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr)) }

// Run is the testable entry point: it executes the CLI with the given
// arguments and output streams and returns the process exit code. Every
// failure path — unknown workload, unreadable input file, assembly error,
// analysis error, missing arguments — returns non-zero so the tool is safe
// to use in build pipelines.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpvm-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "", "named workload to analyze")
		verbose  = fs.Bool("v", false, "also list sources and externals")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fpvm-analyze:", err)
		return 1
	}

	var prog *isa.Program
	var err error
	switch {
	case *workload != "":
		w, ok := workloads.Get(*workload)
		if !ok {
			return fail(fmt.Errorf("unknown workload %q", *workload))
		}
		prog, err = w.Build()
	case fs.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(fs.Arg(0))
		if err == nil {
			prog, err = asm.Assemble(string(src))
		}
	default:
		err = fmt.Errorf("usage: fpvm-analyze [-workload name | prog.s]")
	}
	if err != nil {
		return fail(err)
	}

	rep, err := vsa.Analyze(prog, 0)
	if err != nil {
		return fail(err)
	}
	p, err := patch.Apply(prog, rep)
	if err != nil {
		return fail(err)
	}
	p.Summary(stdout)
	if *verbose {
		fmt.Fprintln(stdout, "sources:")
		for _, s := range rep.Sources {
			fmt.Fprintf(stdout, "  %#06x  %v\n", s.Addr, s.Inst)
		}
		fmt.Fprintln(stdout, "externals:")
		for _, s := range rep.Externals {
			fmt.Fprintf(stdout, "  %#06x  %v\n", s.Addr, s.Inst)
		}
	}
	return 0
}
