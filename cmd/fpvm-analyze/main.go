// fpvm-analyze runs the static value-set analysis of §4.2 on a program and
// reports its sources, sinks, and the correctness-trap patch plan — the
// angr + e9patch step of the hybrid FPVM pipeline.
//
// Usage:
//
//	fpvm-analyze -workload "Enzo"
//	fpvm-analyze prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"fpvm/internal/asm"
	"fpvm/internal/isa"
	"fpvm/internal/patch"
	"fpvm/internal/vsa"
	"fpvm/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "named workload to analyze")
		verbose  = flag.Bool("v", false, "also list sources and externals")
	)
	flag.Parse()

	var prog *isa.Program
	var err error
	switch {
	case *workload != "":
		w, ok := workloads.Get(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		prog, err = w.Build()
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			prog, err = asm.Assemble(string(src))
		}
	default:
		err = fmt.Errorf("usage: fpvm-analyze [-workload name | prog.s]")
	}
	if err != nil {
		fatal(err)
	}

	rep, err := vsa.Analyze(prog, 0)
	if err != nil {
		fatal(err)
	}
	p, err := patch.Apply(prog, rep)
	if err != nil {
		fatal(err)
	}
	p.Summary(os.Stdout)
	if *verbose {
		fmt.Println("sources:")
		for _, s := range rep.Sources {
			fmt.Printf("  %#06x  %v\n", s.Addr, s.Inst)
		}
		fmt.Println("externals:")
		for _, s := range rep.Externals {
			fmt.Printf("  %#06x  %v\n", s.Addr, s.Inst)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpvm-analyze:", err)
	os.Exit(1)
}
