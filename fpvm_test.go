// Tests of the public package surface: construction, config validation, and
// a smoke run of every arithmetic system a downstream user can select.
package fpvm_test

import (
	"bytes"
	"strings"
	"testing"

	"fpvm"
	"fpvm/internal/asm"
)

const apiProg = `
	movsd f0, =0.1
	movsd f1, =0.2
	movsd f2, =0.0
	mov   r0, $0
loop:
	addsd f2, f0
	mulsd f1, f0
	divsd f1, f0
	add   r0, $1
	cmp   r0, $100
	jl    loop
	outf  f2
	halt
`

func buildAPIProg(t *testing.T) *fpvm.Program {
	t.Helper()
	prog, err := asm.Assemble(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestNewMachine(t *testing.T) {
	var out bytes.Buffer
	m, err := fpvm.NewMachine(buildAPIProg(t), &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.Stats.Instructions == 0 {
		t.Errorf("native run recorded no work: cycles=%d insts=%d",
			m.Cycles, m.Stats.Instructions)
	}
	if out.Len() == 0 {
		t.Error("program produced no output")
	}
}

func TestAttachRequiresSystem(t *testing.T) {
	m, err := fpvm.NewMachine(buildAPIProg(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Attach with zero Config did not panic")
		}
	}()
	fpvm.Attach(m, fpvm.Config{})
}

// TestEverySystemSmoke attaches each public arithmetic-system constructor
// under the same program and checks the run completes with FP work emulated.
func TestEverySystemSmoke(t *testing.T) {
	systems := []struct {
		name string
		sys  fpvm.System
	}{
		{"vanilla", fpvm.NewVanillaSystem()},
		{"mpfr", fpvm.NewMPFRSystem(200)},
		{"adaptive", fpvm.NewAdaptiveMPFRSystem(64, 1024)},
		{"interval", fpvm.NewIntervalSystem()},
		{"bfloat16", fpvm.NewBFloat16System()},
		{"posit8", fpvm.NewPositSystem(fpvm.Posit8)},
		{"posit16", fpvm.NewPositSystem(fpvm.Posit16)},
		{"posit32", fpvm.NewPositSystem(fpvm.Posit32)},
		{"posit64", fpvm.NewPositSystem(fpvm.Posit64)},
	}
	var native bytes.Buffer
	nm, err := fpvm.NewMachine(buildAPIProg(t), &native)
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Run(0); err != nil {
		t.Fatal(err)
	}

	for _, tc := range systems {
		t.Run(tc.name, func(t *testing.T) {
			if tc.sys == nil {
				t.Fatal("constructor returned nil system")
			}
			prog := buildAPIProg(t)
			var out bytes.Buffer
			m, err := fpvm.NewMachine(prog, &out)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fpvm.AnalyzeAndPatch(prog, m); err != nil {
				t.Fatal(err)
			}
			vm := fpvm.Attach(m, fpvm.Config{System: tc.sys})
			if err := m.Run(0); err != nil {
				t.Fatal(err)
			}
			if vm.Stats.Traps == 0 || vm.Stats.Emulated == 0 {
				t.Errorf("no FP work virtualized: traps=%d emulated=%d",
					vm.Stats.Traps, vm.Stats.Emulated)
			}
			if tc.name == "vanilla" && out.String() != native.String() {
				t.Errorf("vanilla output differs from native:\n%q\nvs\n%q",
					out.String(), native.String())
			}
			if out.Len() == 0 {
				t.Error("virtualized program produced no output")
			}
		})
	}
}

func TestAttachSpy(t *testing.T) {
	var native, spied bytes.Buffer
	nm, err := fpvm.NewMachine(buildAPIProg(t), &native)
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Run(0); err != nil {
		t.Fatal(err)
	}

	m, err := fpvm.NewMachine(buildAPIProg(t), &spied)
	if err != nil {
		t.Fatal(err)
	}
	spy := fpvm.AttachSpy(m)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if spied.String() != native.String() {
		t.Errorf("FPSpy mode changed program output:\n%q\nvs\n%q",
			spied.String(), native.String())
	}
	var rep bytes.Buffer
	spy.Report(&rep, 5)
	if rep.Len() == 0 {
		t.Error("spy report is empty")
	}
}

// TestTelemetryPublicSurface exercises the re-exported collector end to end:
// attach via Machine.Telem, run, render both artifacts.
func TestTelemetryPublicSurface(t *testing.T) {
	prog := buildAPIProg(t)
	m, err := fpvm.NewMachine(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	telem := fpvm.NewTelemetry(0)
	m.Telem = telem
	vm := fpvm.Attach(m, fpvm.Config{System: fpvm.NewMPFRSystem(100)})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	fp, _, _ := telem.TrapTotals()
	if fp != vm.Stats.Traps {
		t.Errorf("telemetry fp traps = %d, vm.Stats.Traps = %d", fp, vm.Stats.Traps)
	}
	var sites, trace bytes.Buffer
	telem.WriteTopSites(&sites, 3)
	if !strings.Contains(sites.String(), "trap telemetry:") {
		t.Errorf("top-sites report malformed:\n%s", sites.String())
	}
	if err := telem.WriteJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(trace.String(), `{"ev":"trace-header"`) {
		t.Errorf("JSONL trace missing header line:\n%.120s", trace.String())
	}
}

// TestConfigDefaults pins that the zero values of the optional Config knobs
// are usable: default GC epoch, no sequence emulation, default costs.
func TestConfigDefaults(t *testing.T) {
	prog := buildAPIProg(t)
	m, err := fpvm.NewMachine(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := fpvm.Attach(m, fpvm.Config{System: fpvm.NewVanillaSystem()})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if vm.Stats.Sequences != 0 {
		t.Errorf("sequence emulation ran with MaxSequenceLen 0: %d sequences",
			vm.Stats.Sequences)
	}
	if vm.Stats.Traps == 0 {
		t.Error("default config virtualized no FP instructions")
	}
}
