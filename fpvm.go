// Package fpvm is a from-scratch Go reproduction of "FPVM: Towards a
// Floating Point Virtual Machine" (Dinda et al., HPDC '22): virtualization
// of IEEE floating point hardware so that an existing binary can run under
// an alternative arithmetic system — arbitrary-precision MPFR-style floats
// or posits — chosen at load time, with the original binary untouched.
//
// Because a Go process cannot safely trap-and-emulate native SIGFPE (the
// runtime owns signal handling), the x64/Linux substrate is reproduced as a
// deterministic machine simulator whose soft FPU implements real %mxcsr
// semantics; FPVM itself — NaN-boxing, the decode cache, operand binding,
// the op_map emulator, shadow-value garbage collection, value-set analysis
// and correctness patching — is implemented faithfully on top. See
// DESIGN.md for the substitution ledger and EXPERIMENTS.md for the
// paper-vs-measured results.
//
// The top-level package re-exports the main entry points; the subsystems
// live in internal/ packages:
//
//	internal/mpnat, internal/mpfr, internal/posit   arithmetic substrates
//	internal/isa, internal/fpu, internal/machine    the simulated hardware
//	internal/trap                                   exception delivery models
//	internal/nanbox, internal/arith, internal/fpvm  the paper's core
//	internal/vsa, internal/patch                    static analysis + patching
//	internal/asm, internal/workloads                toolchain + benchmarks
//	internal/experiments                            table/figure regeneration
//
// Quick start:
//
//	prog, _ := asm.Assemble(src)             // or workloads.Get(...)
//	m, _ := machine.New(prog, os.Stdout)
//	patched, _ := patch.Apply(prog, nil)     // static analysis (§4.2)
//	patched.Install(m)
//	vm := fpvm.Attach(m, fpvm.Config{System: arith.NewMPFR(200)})
//	err := m.Run(0)
package fpvm

import (
	"io"

	"fpvm/internal/arith"
	"fpvm/internal/fpvm"
	"fpvm/internal/isa"
	"fpvm/internal/machine"
	"fpvm/internal/patch"
	"fpvm/internal/posit"
	"fpvm/internal/telemetry"
)

// Re-exported core types: the minimal surface a downstream user needs.
type (
	// VM is an attached floating point virtual machine.
	VM = fpvm.VM
	// Config selects the arithmetic system and FPVM tuning knobs.
	Config = fpvm.Config
	// Machine is the simulated CPU the program runs on.
	Machine = machine.Machine
	// Program is an encoded binary image.
	Program = isa.Program
	// System is the alternative-arithmetic plug-in interface (§4.3).
	System = arith.System
	// PositConfig selects a posit format for NewPositSystem.
	PositConfig = posit.Config
)

// NewMachine loads a program into a fresh simulated machine whose output
// stream is out.
func NewMachine(prog *Program, out io.Writer) (*Machine, error) {
	return machine.New(prog, out)
}

// Attach installs FPVM under the loaded program: unmasks all FP exceptions,
// installs the trap handlers and the output hijack. The program's FP
// instructions will be emulated in cfg.System whenever they round, overflow,
// underflow, or touch a NaN-boxed value.
func Attach(m *Machine, cfg Config) *VM { return fpvm.Attach(m, cfg) }

// AnalyzeAndPatch runs the §4.2 static value-set analysis and installs
// correctness traps at every sink, returning the patch report.
func AnalyzeAndPatch(prog *Program, m *Machine) (*patch.Patched, error) {
	p, err := patch.Apply(prog, nil)
	if err != nil {
		return nil, err
	}
	p.Install(m)
	return p, nil
}

// NewVanillaSystem returns the IEEE-double validation system (§5.2).
func NewVanillaSystem() System { return arith.Vanilla{} }

// NewMPFRSystem returns an arbitrary-precision arithmetic system with the
// given precision in bits (the paper evaluates 200).
func NewMPFRSystem(prec uint) System { return arith.NewMPFR(prec) }

// NewPositSystem returns a posit arithmetic system. Standard formats are
// Posit8, Posit16, Posit32, and Posit64.
func NewPositSystem(cfg PositConfig) System { return arith.NewPosit(cfg) }

// NewAdaptiveMPFRSystem returns the adaptive-precision system (§4.3's
// "adaptive precision version"): precision escalates from base up to max
// bits when catastrophic cancellation is detected.
func NewAdaptiveMPFRSystem(base, max uint) System { return arith.NewAdaptiveMPFR(base, max) }

// NewIntervalSystem returns the interval arithmetic system: every shadow
// value is a rigorous enclosure of the exact result, so output interval
// widths certify the binary's accumulated rounding error.
func NewIntervalSystem() System { return arith.IntervalSystem{} }

// NewBFloat16System returns the bfloat16 (8-bit mantissa) system.
func NewBFloat16System() System { return arith.BFloat16System{} }

// AttachSpy installs FPSpy instead of FPVM: floating point events are
// recorded (by flag, by operation, by site) and the program's results are
// left bit-identical — the paper's predecessor analysis tool.
func AttachSpy(m *Machine) *Spy { return fpvm.AttachSpy(m) }

// Spy is the FPSpy-mode runtime.
type Spy = fpvm.Spy

// Telemetry is the trap-attribution and exception-flow tracing collector.
// Assign one to Machine.Telem before running to record the event stream
// (drainable as JSONL via WriteJSONL) and the per-PC trap-site table
// (rendered via WriteTopSites). With no collector attached the runtime's
// behavior and modeled cycle counts are bit-identical.
type Telemetry = telemetry.Collector

// NewTelemetry returns a telemetry collector whose event ring holds ringCap
// events (<= 0 selects the default capacity).
func NewTelemetry(ringCap int) *Telemetry { return telemetry.NewCollector(ringCap) }

// Standard posit formats, re-exported for NewPositSystem.
var (
	Posit8  = posit.Posit8
	Posit16 = posit.Posit16
	Posit32 = posit.Posit32
	Posit64 = posit.Posit64
)
